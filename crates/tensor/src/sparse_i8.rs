//! Int8 CSR kernels: SpMM and neighbourhood aggregation with `i32`
//! accumulation, on the degree-bucketed schedule of [`crate::sparse`].
//!
//! GHOST's datapath is 8-bit end to end (§VI), so the graph kernels get
//! the same treatment as the dense GEMM in [`crate::gemm_i8`]: `i8`
//! operands, wrapping `i32` sums, exact arithmetic. Scheduling reuses
//! [`DegreeBuckets`] from PR 4 — tiles are ordered heaviest degree class
//! first and pulled by the work-stealing loop in
//! [`parallel::par_map_indexed`] — and each tile accumulates into one
//! per-tile `i32` scratch buffer (allocation amortised over
//! [`ROW_TILE`] rows) before a deterministic scatter keyed by row id.
//! Because integer sums are exact, the schedule affects wall-time only;
//! outputs are bit-identical for every thread count, which the test
//! suites pin.

use crate::sparse::{DegreeBuckets, ROW_TILE};
use crate::{parallel, TensorError};

/// A borrowed compressed-sparse-row matrix with `i8` values.
///
/// Same layout contract as [`crate::sparse::CsrView`]: `offsets` has
/// `rows + 1` entries spanning each row's slice of `indices` and, when
/// present, `values`. A `None` values slice means every stored entry is
/// level `1` (an unweighted adjacency matrix).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsrI8View<'a> {
    rows: usize,
    cols: usize,
    offsets: &'a [usize],
    indices: &'a [u32],
    values: Option<&'a [i8]>,
}

impl<'a> CsrI8View<'a> {
    /// Builds a validated view over borrowed CSR arrays.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the offsets are not
    /// a monotone `rows + 1` prefix-sum of `indices` or a column id is out
    /// of range, and [`TensorError::LengthMismatch`] when `values`
    /// disagrees with `indices` in length.
    pub fn new(
        rows: usize,
        cols: usize,
        offsets: &'a [usize],
        indices: &'a [u32],
        values: Option<&'a [i8]>,
    ) -> Result<Self, TensorError> {
        if offsets.len() != rows + 1 || offsets.first() != Some(&0) {
            return Err(TensorError::InvalidDimension {
                what: "CSR offsets must have rows + 1 entries starting at 0",
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) || offsets[rows] != indices.len() {
            return Err(TensorError::InvalidDimension {
                what: "CSR offsets must be a monotone prefix-sum of the index array",
            });
        }
        if indices.iter().any(|&c| c as usize >= cols) {
            return Err(TensorError::InvalidDimension {
                what: "CSR column index out of range",
            });
        }
        if let Some(v) = values {
            if v.len() != indices.len() {
                return Err(TensorError::LengthMismatch {
                    expected: indices.len(),
                    actual: v.len(),
                });
            }
        }
        Ok(CsrI8View {
            rows,
            cols,
            offsets,
            indices,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The row-offset array (`rows + 1` entries).
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }

    /// Column ids of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_indices(&self, r: usize) -> &'a [u32] {
        &self.indices[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Values of row `r`, if the matrix is weighted.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_values(&self, r: usize) -> Option<&'a [i8]> {
        self.values
            .map(|v| &v[self.offsets[r]..self.offsets[r + 1]])
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.offsets[r + 1] - self.offsets[r]
    }

    /// Densifies into a row-major `rows × cols` level matrix. Test and
    /// oracle helper: the product `densify · x` through
    /// [`crate::gemm_i8::matmul_i32`] must equal [`spmm_i8`] exactly.
    pub fn densify(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.rows * self.cols];
        for r in 0..self.rows {
            let idx = self.row_indices(r);
            match self.row_values(r) {
                Some(vals) => {
                    for (&c, &v) in idx.iter().zip(vals) {
                        out[r * self.cols + c as usize] = v;
                    }
                }
                None => {
                    for &c in idx {
                        out[r * self.cols + c as usize] = 1;
                    }
                }
            }
        }
        out
    }
}

/// Reduction applied by [`aggregate_i8_into`]. Mean is not offered at the
/// integer layer: exact `i32` sums divide cleanly in f64 *after* the
/// kernel, so callers implement mean as `Sum` plus a per-row divide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum I8Reduce {
    /// Element-wise sum of member levels (wrapping `i32`).
    Sum,
    /// Element-wise maximum of member levels; empty rows reduce to 0.
    Max,
}

fn check_operands(
    a: &CsrI8View<'_>,
    x_len: usize,
    f: usize,
    out_len: usize,
) -> Result<(), TensorError> {
    if f == 0 {
        if x_len != 0 || out_len != 0 {
            return Err(TensorError::LengthMismatch {
                expected: 0,
                actual: x_len.max(out_len),
            });
        }
        return Ok(());
    }
    if x_len != a.cols() * f {
        return Err(TensorError::LengthMismatch {
            expected: a.cols() * f,
            actual: x_len,
        });
    }
    if out_len != a.rows() * f {
        return Err(TensorError::LengthMismatch {
            expected: a.rows() * f,
            actual: out_len,
        });
    }
    Ok(())
}

fn trace_kernel(rows: usize, nnz: usize, f: usize) {
    if phox_trace::enabled() {
        let tr = phox_trace::active();
        tr.count("int8", "spmm_calls", 1);
        tr.count("int8", "macs", (nnz * f) as i64);
        tr.instant(
            "int8",
            "spmm_kernel",
            vec![
                ("rows", phox_trace::Value::UInt(rows as u64)),
                ("nnz", phox_trace::Value::UInt(nnz as u64)),
                ("features", phox_trace::Value::UInt(f as u64)),
                ("row_tile", phox_trace::Value::UInt(ROW_TILE as u64)),
            ],
        );
    }
}

/// The tile body shared by SpMM and aggregation: reduces the given rows
/// into `scratch` (one `f`-wide slot per row, in tile order).
fn reduce_tile(
    a: &CsrI8View<'_>,
    x: &[i8],
    f: usize,
    rows: &[u32],
    reduce: I8Reduce,
    include_self: bool,
    scratch: &mut [i32],
) {
    for (local, &r) in rows.iter().enumerate() {
        let r = r as usize;
        let slot = &mut scratch[local * f..(local + 1) * f];
        let idx = a.row_indices(r);
        match reduce {
            I8Reduce::Sum => {
                slot.fill(0);
                if include_self {
                    for (s, &v) in slot.iter_mut().zip(&x[r * f..(r + 1) * f]) {
                        *s = s.wrapping_add(v as i32);
                    }
                }
                match a.row_values(r) {
                    Some(vals) => {
                        for (&u, &w) in idx.iter().zip(vals) {
                            let src = &x[u as usize * f..(u as usize + 1) * f];
                            for (s, &v) in slot.iter_mut().zip(src) {
                                *s = s.wrapping_add((w as i32).wrapping_mul(v as i32));
                            }
                        }
                    }
                    None => {
                        for &u in idx {
                            let src = &x[u as usize * f..(u as usize + 1) * f];
                            for (s, &v) in slot.iter_mut().zip(src) {
                                *s = s.wrapping_add(v as i32);
                            }
                        }
                    }
                }
            }
            I8Reduce::Max => {
                slot.fill(i32::MIN);
                if include_self {
                    for (s, &v) in slot.iter_mut().zip(&x[r * f..(r + 1) * f]) {
                        *s = (*s).max(v as i32);
                    }
                }
                for &u in idx {
                    let src = &x[u as usize * f..(u as usize + 1) * f];
                    for (s, &v) in slot.iter_mut().zip(src) {
                        *s = (*s).max(v as i32);
                    }
                }
                for s in slot.iter_mut() {
                    if *s == i32::MIN {
                        *s = 0;
                    }
                }
            }
        }
    }
}

/// Runs the degree-bucketed tile loop and scatters per-tile scratch back
/// into `out` keyed by row id (deterministic for any thread count).
fn run_scheduled(
    a: &CsrI8View<'_>,
    x: &[i8],
    f: usize,
    schedule: &DegreeBuckets,
    reduce: I8Reduce,
    include_self: bool,
    out: &mut [i32],
) -> Result<(), TensorError> {
    if schedule.rows() != a.rows() {
        return Err(TensorError::LengthMismatch {
            expected: a.rows(),
            actual: schedule.rows(),
        });
    }
    let tiles = schedule.num_tiles();
    // Heaviest tiles are scheduled first and pulled by the work-stealing
    // loop; each tile owns one scratch allocation reused across its rows.
    let results: Vec<Vec<i32>> = parallel::par_map_indexed(tiles, |t| {
        let rows = schedule.tile_rows(t);
        let mut scratch = vec![0i32; rows.len() * f];
        reduce_tile(a, x, f, rows, reduce, include_self, &mut scratch);
        scratch
    });
    for (t, scratch) in results.iter().enumerate() {
        for (local, &r) in schedule.tile_rows(t).iter().enumerate() {
            let r = r as usize;
            out[r * f..(r + 1) * f].copy_from_slice(&scratch[local * f..(local + 1) * f]);
        }
    }
    Ok(())
}

/// Int8 sparse-times-dense product `out = a · x` with exact `i32` sums,
/// using a caller-provided [`DegreeBuckets`] schedule (build it once per
/// graph and reuse it across layers/epochs).
///
/// `x` is row-major `a.cols() × f`; `out` is row-major `a.rows() × f`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when operand lengths disagree
/// with the view's shape or the schedule covers a different row count.
pub fn spmm_i8_scheduled(
    a: &CsrI8View<'_>,
    x: &[i8],
    f: usize,
    schedule: &DegreeBuckets,
    out: &mut [i32],
) -> Result<(), TensorError> {
    check_operands(a, x.len(), f, out.len())?;
    if f == 0 || a.rows() == 0 {
        return Ok(());
    }
    run_scheduled(a, x, f, schedule, I8Reduce::Sum, false, out)?;
    trace_kernel(a.rows(), a.nnz(), f);
    Ok(())
}

/// Int8 sparse-times-dense product `a · x` into a fresh `i32` buffer,
/// building the degree-bucketed schedule internally.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `x.len() != a.cols() * f`.
pub fn spmm_i8(a: &CsrI8View<'_>, x: &[i8], f: usize) -> Result<Vec<i32>, TensorError> {
    let mut out = vec![0i32; a.rows() * f];
    if f == 0 || a.rows() == 0 {
        check_operands(a, x.len(), f, out.len())?;
        return Ok(out);
    }
    let schedule = DegreeBuckets::new(a.offsets());
    spmm_i8_scheduled(a, x, f, &schedule, &mut out)?;
    Ok(out)
}

/// Int8 neighbourhood aggregation `out[r] = reduce(x[members of r])`,
/// with the row itself prepended when `include_self` is set. Stored
/// values are ignored — like [`crate::sparse::aggregate_into`], this is a
/// structural reduction over the adjacency pattern.
///
/// Sum results are exact `i32` level sums (mean = divide in f64 after);
/// max results are the member level maxima widened to `i32`, with empty
/// rows reducing to 0.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] on operand length disagreement
/// and [`TensorError::InvalidDimension`] when `include_self` is requested
/// for a non-square pattern.
pub fn aggregate_i8_into(
    a: &CsrI8View<'_>,
    x: &[i8],
    f: usize,
    reduce: I8Reduce,
    include_self: bool,
    out: &mut [i32],
) -> Result<(), TensorError> {
    check_operands(a, x.len(), f, out.len())?;
    if include_self && a.rows() != a.cols() {
        return Err(TensorError::InvalidDimension {
            what: "include_self aggregation needs a square adjacency pattern",
        });
    }
    if f == 0 || a.rows() == 0 {
        return Ok(());
    }
    let unweighted = CsrI8View { values: None, ..*a };
    let schedule = DegreeBuckets::new(a.offsets());
    run_scheduled(&unweighted, x, f, &schedule, reduce, include_self, out)?;
    trace_kernel(a.rows(), a.nnz(), f);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_i8;
    use crate::Prng;

    struct Owned {
        rows: usize,
        cols: usize,
        offsets: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<i8>,
    }

    impl Owned {
        fn view(&self, weighted: bool) -> CsrI8View<'_> {
            CsrI8View::new(
                self.rows,
                self.cols,
                &self.offsets,
                &self.indices,
                weighted.then_some(self.values.as_slice()),
            )
            .unwrap()
        }
    }

    /// 4x4 pattern: row 0 <- {1, 2}, row 2 <- {0}, rows 1/3 empty.
    fn small() -> Owned {
        Owned {
            rows: 4,
            cols: 4,
            offsets: vec![0, 2, 2, 3, 3],
            indices: vec![1, 2, 0],
            values: vec![2, -1, 3],
        }
    }

    fn random_graph(rows: usize, cols: usize, deg: usize, seed: u64) -> Owned {
        let mut rng = Prng::new(seed);
        let mut offsets = vec![0usize];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for _ in 0..rows {
            let d = (rng.next_u64() as usize) % (deg + 1);
            let mut cols_in_row: Vec<u32> = (0..d)
                .map(|_| (rng.next_u64() % cols as u64) as u32)
                .collect();
            cols_in_row.sort_unstable();
            cols_in_row.dedup();
            for &c in &cols_in_row {
                indices.push(c);
                values.push(((rng.next_u64() % 255) as i64 - 127) as i8);
            }
            offsets.push(indices.len());
        }
        Owned {
            rows,
            cols,
            offsets,
            indices,
            values,
        }
    }

    fn random_x(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = Prng::new(seed);
        (0..len)
            .map(|_| ((rng.next_u64() % 255) as i64 - 127) as i8)
            .collect()
    }

    #[test]
    fn view_validation() {
        assert!(CsrI8View::new(2, 2, &[0, 1, 1], &[0], None).is_ok());
        assert!(CsrI8View::new(2, 2, &[0, 1], &[0], None).is_err());
        assert!(CsrI8View::new(2, 2, &[0, 2, 1], &[0, 1, 0], None).is_err());
        assert!(CsrI8View::new(2, 2, &[0, 1, 2], &[0, 5], None).is_err());
        assert!(CsrI8View::new(2, 2, &[0, 1, 2], &[0, 1], Some(&[1])).is_err());
    }

    #[test]
    fn spmm_matches_densified_gemm() {
        for weighted in [false, true] {
            let g = random_graph(37, 29, 6, 5);
            let f = 9;
            let x = random_x(29 * f, 6);
            let v = g.view(weighted);
            let sparse = spmm_i8(&v, &x, f).unwrap();
            let dense = gemm_i8::matmul_i32_naive(&v.densify(), &x, 37, 29, f).unwrap();
            assert_eq!(sparse, dense, "weighted={weighted}");
        }
    }

    #[test]
    fn spmm_known_values() {
        let g = small();
        // f = 1, x = [10, 20, 30, 40]^T.
        let x = [10i8, 20, 30, 40];
        let y = spmm_i8(&g.view(true), &x, 1).unwrap();
        assert_eq!(y, vec![2 * 20 - 30, 0, 3 * 10, 0]);
        let y = spmm_i8(&g.view(false), &x, 1).unwrap();
        assert_eq!(y, vec![50, 0, 10, 0]);
    }

    #[test]
    fn aggregate_reductions() {
        let g = small();
        let x = [10i8, 20, 30, 40];
        let mut out = vec![0i32; 4];
        // Values are ignored even on the weighted view.
        aggregate_i8_into(&g.view(true), &x, 1, I8Reduce::Sum, false, &mut out).unwrap();
        assert_eq!(out, vec![50, 0, 10, 0]);
        aggregate_i8_into(&g.view(true), &x, 1, I8Reduce::Sum, true, &mut out).unwrap();
        assert_eq!(out, vec![60, 20, 40, 40]);
        aggregate_i8_into(&g.view(true), &x, 1, I8Reduce::Max, false, &mut out).unwrap();
        assert_eq!(out, vec![30, 0, 10, 0]);
        aggregate_i8_into(&g.view(true), &x, 1, I8Reduce::Max, true, &mut out).unwrap();
        assert_eq!(out, vec![30, 20, 30, 40]);
    }

    #[test]
    fn max_of_negative_members_stays_negative() {
        // Row with only negative members must not report 0.
        let offsets = vec![0usize, 1];
        let indices = vec![0u32];
        let v = CsrI8View::new(1, 1, &offsets, &indices, None).unwrap();
        let mut out = vec![0i32; 1];
        aggregate_i8_into(&v, &[-5], 1, I8Reduce::Max, false, &mut out).unwrap();
        assert_eq!(out, vec![-5]);
    }

    #[test]
    fn thread_count_invariance() {
        let g = random_graph(700, 700, 12, 7);
        let f = 13;
        let x = random_x(700 * f, 8);
        let v = g.view(true);
        let reference = parallel::with_threads(1, || spmm_i8(&v, &x, f).unwrap());
        for threads in [2, 4, 8] {
            let y = parallel::with_threads(threads, || spmm_i8(&v, &x, f).unwrap());
            assert_eq!(y, reference, "threads={threads}");
        }
    }

    #[test]
    fn scheduled_variant_reuses_schedule() {
        let g = random_graph(200, 200, 5, 9);
        let f = 4;
        let x = random_x(200 * f, 10);
        let v = g.view(true);
        let schedule = DegreeBuckets::new(v.offsets());
        let mut out = vec![0i32; 200 * f];
        spmm_i8_scheduled(&v, &x, f, &schedule, &mut out).unwrap();
        assert_eq!(out, spmm_i8(&v, &x, f).unwrap());
        // Schedule for the wrong row count is rejected.
        let wrong = DegreeBuckets::new(&[0, 0]);
        assert!(spmm_i8_scheduled(&v, &x, f, &wrong, &mut out).is_err());
    }

    #[test]
    fn shape_validation() {
        let g = small();
        let v = g.view(true);
        assert!(spmm_i8(&v, &[0; 3], 1).is_err());
        let mut short = vec![0i32; 3];
        assert!(
            spmm_i8_scheduled(&v, &[0; 4], 1, &DegreeBuckets::new(v.offsets()), &mut short)
                .is_err()
        );
        // include_self on a non-square pattern.
        let rect = CsrI8View::new(2, 3, &[0, 1, 1], &[2], None).unwrap();
        let mut out = vec![0i32; 2];
        assert!(aggregate_i8_into(&rect, &[0; 3], 1, I8Reduce::Sum, true, &mut out).is_err());
    }

    #[test]
    fn empty_feature_width_is_a_no_op() {
        let g = small();
        let mut out = vec![0i32; 0];
        assert!(spmm_i8(&g.view(false), &[], 0).is_ok());
        assert!(aggregate_i8_into(&g.view(false), &[], 0, I8Reduce::Sum, true, &mut out).is_ok());
    }
}
