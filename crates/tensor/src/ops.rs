//! Nonlinear neural-network building blocks.
//!
//! These are the reference (digital, fp64) implementations of every
//! nonlinearity that appears in the paper's two accelerators:
//!
//! * softmax — computed digitally via LUTs in both TRON and GHOST;
//! * layer normalization — implemented optically by a single
//!   parameter-tuned MR in TRON (§V.C);
//! * ReLU / sigmoid / tanh — implemented optically by SOAs in GHOST's
//!   update units (§V.D);
//! * GELU — used by the feed-forward blocks of modern transformer
//!   configurations.

use crate::{Matrix, TensorError};

/// Row-wise numerically-stable softmax.
///
/// A row whose entries are all `-inf` (a fully-masked attention row —
/// every position disallowed) produces an all-zero output row rather
/// than NaN: the naive `exp(v - max)` would compute `-inf - -inf`.
/// Zero weights mean "attend to nothing", which composes cleanly with
/// the context product downstream.
///
/// # Example
///
/// ```
/// use phox_tensor::{Matrix, ops};
///
/// # fn main() -> Result<(), phox_tensor::TensorError> {
/// let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
/// let p = ops::softmax_rows(&logits);
/// assert!((p.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if max == f64::NEG_INFINITY {
            // Fully-masked (or empty) row: exp(v - max) would be NaN.
            row.fill(0.0);
            continue;
        }
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// Matrix product with a strictly sequential accumulation order over the
/// inner dimension: `out[i][j] = ((a[i][0]·b[0][j] + a[i][1]·b[1][j]) +
/// …)`, one accumulator, ascending `k`.
///
/// Unlike the blocked/multi-lane [`Matrix::matmul`], this order is
/// *prefix-invariant*: extending the inner dimension with rows whose
/// contribution is exactly `±0.0` leaves every output bit unchanged
/// (adding a zero term to a running f64 sum is an exact no-op). The
/// attention context product `softmax(scores)·V` uses it so that a
/// KV-cached decode step over `t` context rows is bit-identical to row
/// `t-1` of the full causal forward over `L ≥ t` rows, where the masked
/// tail carries exact-zero weights.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_seq(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        // SIMD over the output columns only: each output element keeps
        // its own single accumulator advancing in ascending `k`, so the
        // prefix-invariance contract above is bitwise unchanged. This is
        // the decode-GEMV hot loop (`m == 1` inside a KV-cached step).
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = &b.as_slice()[p * n..(p + 1) * n];
            crate::gemm::simd::axpy(orow, av, brow);
        }
    }
    Ok(out)
}

/// Row-wise layer normalization with learnable per-column `gamma`/`beta`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `gamma`/`beta` length does not
/// equal the column count.
pub fn layer_norm(
    x: &Matrix,
    gamma: &[f64],
    beta: &[f64],
    eps: f64,
) -> Result<Matrix, TensorError> {
    if gamma.len() != x.cols() || beta.len() != x.cols() {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape(),
            rhs: (gamma.len(), beta.len()),
        });
    }
    let mut out = x.clone();
    let cols = x.cols();
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let mean = row.iter().sum::<f64>() / cols as f64;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / cols as f64;
        let inv = 1.0 / (var + eps).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * gamma[c] + beta[c];
        }
    }
    Ok(out)
}

/// Element-wise ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// Element-wise logistic sigmoid.
pub fn sigmoid(x: &Matrix) -> Matrix {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Element-wise hyperbolic tangent.
pub fn tanh(x: &Matrix) -> Matrix {
    x.map(f64::tanh)
}

/// Element-wise GELU (tanh approximation, as used by BERT/GPT).
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(gelu_scalar)
}

/// Scalar GELU (tanh approximation).
pub fn gelu_scalar(v: f64) -> f64 {
    const C: f64 = 0.797_884_560_802_865_4; // sqrt(2/pi)
    0.5 * v * (1.0 + (C * (v + 0.044_715 * v.powi(3))).tanh())
}

/// Scalar LeakyReLU with slope `alpha` for negative inputs (used by GAT).
pub fn leaky_relu_scalar(v: f64, alpha: f64) -> f64 {
    if v >= 0.0 {
        v
    } else {
        alpha * v
    }
}

/// Reference scaled-dot-product attention, eq. (1) of the paper:
/// `softmax(Q·Kᵀ/√d_k)·V`.
///
/// # Errors
///
/// Returns a shape error when `Q`, `K`, `V` dimensions are incompatible.
pub fn scaled_dot_product_attention(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
) -> Result<Matrix, TensorError> {
    if k.cols() == 0 {
        return Err(TensorError::InvalidDimension {
            what: "attention key dimension must be nonzero",
        });
    }
    let scores = q
        .matmul(&k.transpose())?
        .scale(1.0 / (k.cols() as f64).sqrt());
    softmax_rows(&scores).matmul(v)
}

/// Row-wise argmax (ties resolved to the lowest index). Used by accuracy
/// evaluation of classification heads.
pub fn argmax_rows(x: &Matrix) -> Vec<usize> {
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).unwrap();
        let p = softmax_rows(&x);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[101.0, 102.0, 103.0]]).unwrap();
        assert!(softmax_rows(&a).approx_eq(&softmax_rows(&b), 1e-12));
    }

    #[test]
    fn softmax_handles_large_magnitudes() {
        let x = Matrix::from_rows(&[&[1e6, 1e6 + 1.0]]).unwrap();
        let p = softmax_rows(&x);
        assert!(p.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_fully_masked_row_is_all_zero() {
        // Regression: an all-(-inf) row used to poison itself with NaN
        // (max = -inf, so v - max = NaN). Defined behavior: all zeros.
        let x = Matrix::from_rows(&[
            &[f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY],
            &[0.0, f64::NEG_INFINITY, f64::NEG_INFINITY],
        ])
        .unwrap();
        let p = softmax_rows(&x);
        assert_eq!(p.row(0), &[0.0, 0.0, 0.0]);
        // Partially-masked rows are unaffected by the guard.
        assert_eq!(p.row(1), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn matmul_seq_matches_blocked_matmul() {
        let a = crate::Prng::new(11).fill_normal(5, 17, 0.0, 1.0);
        let b = crate::Prng::new(12).fill_normal(17, 7, 0.0, 1.0);
        let seq = matmul_seq(&a, &b).unwrap();
        let blocked = a.matmul(&b).unwrap();
        assert!(seq.approx_eq(&blocked, 1e-12));
    }

    #[test]
    fn matmul_seq_is_prefix_invariant_under_zero_weights() {
        // Appending context rows with exactly-zero weights must leave
        // every output bit unchanged — the KV-decode oracle property.
        let t = 6;
        let full = 10;
        let w_short = crate::Prng::new(13).fill_normal(1, t, 0.0, 1.0);
        let v_full = crate::Prng::new(14).fill_normal(full, 4, 0.0, 1.0);
        let mut padded = vec![0.0; full];
        padded[..t].copy_from_slice(w_short.row(0));
        let w_full = Matrix::from_vec(1, full, padded).unwrap();
        let v_short = Matrix::from_vec(t, 4, v_full.as_slice()[..t * 4].to_vec()).unwrap();
        let a = matmul_seq(&w_short, &v_short).unwrap();
        let b = matmul_seq(&w_full, &v_full).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn matmul_seq_shape_mismatch() {
        assert!(matmul_seq(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let g = vec![1.0; 4];
        let b = vec![0.0; 4];
        let y = layer_norm(&x, &g, &b, 1e-9).unwrap();
        let mean: f64 = y.row(0).iter().sum::<f64>() / 4.0;
        let var: f64 = y.row(0).iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let x = Matrix::from_rows(&[&[1.0, -1.0]]).unwrap();
        let y = layer_norm(&x, &[2.0, 2.0], &[1.0, 1.0], 1e-12).unwrap();
        // normalized row is [1, -1]; gamma*v+beta => [3, -1]
        assert!((y.get(0, 0) - 3.0).abs() < 1e-6);
        assert!((y.get(0, 1) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_shape_mismatch() {
        let x = Matrix::zeros(1, 4);
        assert!(layer_norm(&x, &[1.0; 3], &[0.0; 4], 1e-9).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]).unwrap();
        assert_eq!(relu(&x).row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_and_tanh_bounds() {
        let x = Matrix::from_rows(&[&[-50.0, 0.0, 50.0]]).unwrap();
        let s = sigmoid(&x);
        assert!(
            s.row(0)[0] < 1e-9 && (s.row(0)[1] - 0.5).abs() < 1e-12 && s.row(0)[2] > 1.0 - 1e-9
        );
        let t = tanh(&x);
        assert!(t.min() >= -1.0 && t.max() <= 1.0);
    }

    #[test]
    fn gelu_matches_reference_points() {
        // Reference values for the tanh approximation.
        assert!((gelu_scalar(0.0)).abs() < 1e-12);
        assert!((gelu_scalar(1.0) - 0.841_192).abs() < 1e-4);
        assert!((gelu_scalar(-1.0) + 0.158_808).abs() < 1e-4);
    }

    #[test]
    fn leaky_relu_slope() {
        assert_eq!(leaky_relu_scalar(2.0, 0.2), 2.0);
        assert_eq!(leaky_relu_scalar(-2.0, 0.2), -0.4);
    }

    #[test]
    fn attention_output_shape() {
        let q = Matrix::zeros(4, 8);
        let k = Matrix::zeros(6, 8);
        let v = Matrix::zeros(6, 16);
        let o = scaled_dot_product_attention(&q, &k, &v).unwrap();
        assert_eq!(o.shape(), (4, 16));
    }

    #[test]
    fn attention_uniform_when_scores_equal() {
        // With Q=0, all scores are equal, so attention averages V rows.
        let q = Matrix::zeros(1, 4);
        let k = Matrix::filled(3, 4, 1.0);
        let v = Matrix::from_rows(&[&[3.0], &[6.0], &[9.0]]).unwrap();
        let o = scaled_dot_product_attention(&q, &k, &v).unwrap();
        assert!((o.get(0, 0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_rows_ties_to_lowest() {
        let x = Matrix::from_rows(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]).unwrap();
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }
}
