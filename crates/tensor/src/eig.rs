//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The thermal-eigenmode-decomposition (TED) tuning scheme adopted by both
//! accelerators (§V.A, following SONIC) requires diagonalising the
//! symmetric thermal-coupling matrix of a row of micro-heaters. The Jacobi
//! method is simple, unconditionally stable for symmetric matrices, and
//! plenty fast at the bank sizes involved (tens of rings).

use crate::{Matrix, TensorError};

/// Result of a symmetric eigendecomposition: `A = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eigen {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as the *columns* of this matrix, ordered to
    /// match [`Eigen::values`].
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// * [`TensorError::NotSymmetric`] if `a` is not square-symmetric within
///   `1e-9` absolute tolerance.
/// * [`TensorError::NoConvergence`] if the off-diagonal norm fails to fall
///   below `1e-12` within 100 sweeps (does not occur for well-scaled
///   physical coupling matrices).
///
/// # Example
///
/// ```
/// use phox_tensor::{Matrix, eig};
///
/// # fn main() -> Result<(), phox_tensor::TensorError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
/// let e = eig::eigh(&a)?;
/// assert!((e.values[0] - 1.0).abs() < 1e-10);
/// assert!((e.values[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn eigh(a: &Matrix) -> Result<Eigen, TensorError> {
    if !a.is_symmetric(1e-9) {
        return Err(TensorError::NotSymmetric);
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for sweep in 0..MAX_SWEEPS {
        let off: f64 = off_diagonal_norm(&m);
        if off < 1e-12 {
            return Ok(sorted_eigen(m, v));
        }
        let _ = sweep;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) / apq;
                // Stable rotation (Numerical Recipes formulation).
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                rotate(&mut m, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
    }
    Err(TensorError::NoConvergence {
        what: "jacobi eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

/// Solves the symmetric positive-definite system `A·x = b` via
/// eigendecomposition. Used by the TED model to find heater drive powers.
///
/// # Errors
///
/// Propagates [`eigh`] errors; additionally returns
/// [`TensorError::InvalidDimension`] if `b` length mismatches or any
/// eigenvalue is not strictly positive (matrix not SPD).
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, TensorError> {
    if b.len() != a.rows() {
        return Err(TensorError::InvalidDimension {
            what: "rhs length must equal matrix dimension",
        });
    }
    let e = eigh(a)?;
    if e.values.iter().any(|&l| l <= 0.0) {
        return Err(TensorError::InvalidDimension {
            what: "matrix is not positive definite",
        });
    }
    let n = b.len();
    // x = V diag(1/λ) Vᵀ b
    let mut y = vec![0.0; n]; // y = Vᵀ b
    for j in 0..n {
        let mut s = 0.0;
        for i in 0..n {
            s += e.vectors.get(i, j) * b[i];
        }
        y[j] = s / e.values[j];
    }
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += e.vectors.get(i, j) * y[j];
        }
        x[i] = s;
    }
    Ok(x)
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for p in 0..n {
        for q in (p + 1)..n {
            s += m.get(p, q).powi(2);
        }
    }
    s.sqrt()
}

/// Applies the Jacobi rotation `J(p,q,θ)ᵀ · M · J(p,q,θ)` in place.
fn rotate(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    for k in 0..n {
        let mkp = m.get(k, p);
        let mkq = m.get(k, q);
        m.set(k, p, c * mkp - s * mkq);
        m.set(k, q, s * mkp + c * mkq);
    }
    for k in 0..n {
        let mpk = m.get(p, k);
        let mqk = m.get(q, k);
        m.set(p, k, c * mpk - s * mqk);
        m.set(q, k, s * mpk + c * mqk);
    }
}

/// Applies the rotation to the eigenvector accumulator (columns p, q).
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for k in 0..n {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

fn sorted_eigen(m: Matrix, v: Matrix) -> Eigen {
    let n = m.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    idx.sort_by(|&a, &b| diag[a].total_cmp(&diag[b]));
    let values = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        for r in 0..n {
            vectors.set(r, new_col, v.get(r, old_col));
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &Eigen) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, e.values[i]);
        }
        e.vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn two_by_two_known_values() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = eigh(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -1.0]]).unwrap();
        let e = eigh(&a).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.25], &[0.5, 0.25, 2.0]]).unwrap();
        let e = eigh(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-9));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 4.0, 0.5], &[1.0, 0.5, 3.0]]).unwrap();
        let e = eigh(&a).unwrap();
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn values_sorted_ascending() {
        let a =
            Matrix::from_rows(&[&[10.0, 0.1, 0.0], &[0.1, -3.0, 0.2], &[0.0, 0.2, 1.0]]).unwrap();
        let e = eigh(&a).unwrap();
        assert!(e.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rejects_nonsymmetric() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(eigh(&a), Err(TensorError::NotSymmetric)));
    }

    #[test]
    fn solve_spd_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x_true = [1.0, 2.0];
        let b = [4.0 + 2.0, 1.0 + 6.0];
        let x = solve_spd(&a, &b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-9);
        assert!((x[1] - x_true[1]).abs() < 1e-9);
    }

    #[test]
    fn solve_spd_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        assert!(solve_spd(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn solve_spd_rejects_bad_rhs_len() {
        let a = Matrix::identity(3);
        assert!(solve_spd(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn large_coupling_matrix_converges() {
        // Exponential-decay coupling matrix like the TED thermal model.
        let n = 16;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let d = (i as f64 - j as f64).abs();
                a.set(i, j, (-d / 2.0).exp());
            }
        }
        let e = eigh(&a).unwrap();
        assert!(reconstruct(&e).approx_eq(&a, 1e-8));
    }
}
