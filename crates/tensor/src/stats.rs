//! Summary statistics used by accuracy and error analyses.

use crate::Matrix;

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0 for slices shorter than 2).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|v| (v - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Linear-interpolated percentile `p` in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Root-mean-square error between two equal-shaped matrices.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn rmse(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "rmse requires equal shapes");
    if a.is_empty() {
        return 0.0;
    }
    let se: f64 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).powi(2))
        .sum();
    (se / a.len() as f64).sqrt()
}

/// Relative Frobenius error `‖a − b‖ / ‖a‖`, with the convention that the
/// error of two zero matrices is zero.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relative_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "relative_error requires equal shapes");
    let denom = a.frobenius_norm();
    let num = a
        .sub(b)
        .unwrap_or_else(|_| unreachable!("shapes asserted equal above"))
        .frobenius_norm();
    if denom == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / denom
    }
}

/// Fraction of positions where two label vectors agree.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy requires equal lengths");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geo_mean of empty slice");
    assert!(
        xs.iter().all(|&v| v > 0.0),
        "geo_mean requires positive values"
    );
    (xs.iter().map(|v| v.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mean_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    fn rmse_of_identical_is_zero() {
        let a = Matrix::filled(3, 3, 2.0);
        assert_eq!(rmse(&a, &a), 0.0);
    }

    #[test]
    fn rmse_known_value() {
        let a = Matrix::from_rows(&[&[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((rmse(&a, &b) - (12.5_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn relative_error_conventions() {
        let z = Matrix::zeros(2, 2);
        assert_eq!(relative_error(&z, &z), 0.0);
        let nz = Matrix::filled(2, 2, 1.0);
        assert!(relative_error(&z, &nz).is_infinite());
        assert!((relative_error(&nz, &z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn geo_mean_of_powers() {
        assert!((geo_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
    }
}
