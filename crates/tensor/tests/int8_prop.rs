//! Property-based tests for the int8 compute path: the blocked/SIMD GEMM
//! kernel must be *bitwise* equal to the naive i32 oracle over arbitrary
//! shapes (including degenerate and saturated operands), byte-identical
//! across thread counts, and the int8 SpMM must agree exactly with the
//! int8 dense GEMM on the densified adjacency.

use proptest::prelude::*;

use phox_tensor::sparse::DegreeBuckets;
use phox_tensor::sparse_i8::{self, CsrI8View, I8Reduce};
use phox_tensor::{gemm_i8, parallel, Matrix, QuantMatrix, Quantizer};

/// Strategy: an i8 buffer of exactly `len` elements spanning the full
/// (symmetric) level range, saturation included.
fn levels(len: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(-127i8..=127, len)
}

/// Strategy: a CSR pattern over an `n x n` adjacency as a row-major
/// density mask, returned as (offsets, indices).
fn csr_pattern(n: usize) -> impl Strategy<Value = (Vec<usize>, Vec<u32>)> {
    proptest::collection::vec(0u8..4, n * n).prop_map(move |mask| {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        offsets.push(0);
        for r in 0..n {
            for c in 0..n {
                // Keep ~1 in 4 candidate edges.
                if mask[r * n + c] == 0 {
                    indices.push(c as u32);
                }
            }
            offsets.push(indices.len());
        }
        (offsets, indices)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocked_gemm_bitwise_equals_naive_oracle(
        ((m, k, n), a, b) in (1usize..=24, 0usize..=24, 1usize..=24)
            .prop_flat_map(|(m, k, n)| {
                (Just((m, k, n)), levels(m * k), levels(k * n))
            }),
    ) {
        let naive = gemm_i8::matmul_i32_naive(&a, &b, m, k, n).unwrap();
        let blocked = gemm_i8::matmul_i32_blocked(&a, &b, m, k, n).unwrap();
        let production = gemm_i8::matmul_i32(&a, &b, m, k, n).unwrap();
        prop_assert_eq!(&blocked, &naive);
        prop_assert_eq!(&production, &naive);
    }

    #[test]
    fn saturated_operands_stay_exact(
        (m, k, n) in (1usize..=8, 1usize..=64, 1usize..=8),
    ) {
        // All-saturated panels maximise every partial product; the sums
        // must still be exact (i32 headroom) and identical in all paths.
        let a = vec![127i8; m * k];
        let b = vec![-127i8; k * n];
        let naive = gemm_i8::matmul_i32_naive(&a, &b, m, k, n).unwrap();
        prop_assert!(naive.iter().all(|&s| s == -(127 * 127 * k as i32)));
        let blocked = gemm_i8::matmul_i32_blocked(&a, &b, m, k, n).unwrap();
        prop_assert_eq!(&blocked, &naive);
    }

    #[test]
    fn gemm_is_byte_identical_across_thread_counts(
        ((m, k, n), a, b) in (1usize..=20, 1usize..=20, 1usize..=20)
            .prop_flat_map(|(m, k, n)| {
                (Just((m, k, n)), levels(m * k), levels(k * n))
            }),
    ) {
        let baseline = parallel::with_threads(1, || {
            gemm_i8::matmul_i32(&a, &b, m, k, n).unwrap()
        });
        for threads in [2usize, 4] {
            let out = parallel::with_threads(threads, || {
                gemm_i8::matmul_i32(&a, &b, m, k, n).unwrap()
            });
            prop_assert_eq!(&out, &baseline, "threads = {}", threads);
        }
    }

    #[test]
    fn quant_matmul_equals_naive_oracle(
        ((m, k, n), a, b) in (1usize..=12, 1usize..=12, 1usize..=12)
            .prop_flat_map(|(m, k, n)| {
                (Just((m, k, n)), levels(m * k), levels(k * n))
            }),
    ) {
        let qa = QuantMatrix::from_levels(m, k, 0.25, a).unwrap();
        let qb = QuantMatrix::from_levels(k, n, 0.5, b).unwrap();
        let fast = qa.matmul(&qb).unwrap();
        let naive = qa.matmul_naive(&qb).unwrap();
        // Same integer sums, same scale product: bitwise-equal f64.
        prop_assert_eq!(fast.as_slice(), naive.as_slice());
    }

    #[test]
    fn spmm_equals_densified_gemm(
        (n, f, pattern, x) in (1usize..=12, 1usize..=8)
            .prop_flat_map(|(n, f)| {
                (Just(n), Just(f), csr_pattern(n), levels(n * f))
            }),
    ) {
        let (offsets, indices) = pattern;
        let nnz = indices.len();
        let values: Vec<i8> = (0..nnz).map(|i| ((i % 255) as i32 - 127) as i8).collect();
        let view = CsrI8View::new(n, n, &offsets, &indices, Some(&values)).unwrap();
        let spmm = sparse_i8::spmm_i8(&view, &x, f).unwrap();
        let dense = view.densify();
        let gemm = gemm_i8::matmul_i32_naive(&dense, &x, n, n, f).unwrap();
        prop_assert_eq!(&spmm, &gemm);
    }

    #[test]
    fn spmm_is_byte_identical_across_thread_counts(
        (n, f, pattern, x) in (1usize..=16, 1usize..=6)
            .prop_flat_map(|(n, f)| {
                (Just(n), Just(f), csr_pattern(n), levels(n * f))
            }),
    ) {
        let (offsets, indices) = pattern;
        let view = CsrI8View::new(n, n, &offsets, &indices, None).unwrap();
        let baseline = parallel::with_threads(1, || {
            sparse_i8::spmm_i8(&view, &x, f).unwrap()
        });
        for threads in [2usize, 4] {
            let out = parallel::with_threads(threads, || {
                sparse_i8::spmm_i8(&view, &x, f).unwrap()
            });
            prop_assert_eq!(&out, &baseline, "threads = {}", threads);
        }
    }

    #[test]
    fn scheduled_spmm_reuses_any_matching_schedule(
        (n, f, pattern, x) in (1usize..=12, 1usize..=6)
            .prop_flat_map(|(n, f)| {
                (Just(n), Just(f), csr_pattern(n), levels(n * f))
            }),
    ) {
        let (offsets, indices) = pattern;
        let view = CsrI8View::new(n, n, &offsets, &indices, None).unwrap();
        let schedule = DegreeBuckets::new(&offsets);
        let mut out = vec![0i32; n * f];
        sparse_i8::spmm_i8_scheduled(&view, &x, f, &schedule, &mut out).unwrap();
        let unscheduled = sparse_i8::spmm_i8(&view, &x, f).unwrap();
        prop_assert_eq!(&out, &unscheduled);
    }

    #[test]
    fn aggregate_max_bounds_members(
        (n, f, pattern, x) in (1usize..=10, 1usize..=4)
            .prop_flat_map(|(n, f)| {
                (Just(n), Just(f), csr_pattern(n), levels(n * f))
            }),
    ) {
        let (offsets, indices) = pattern;
        let view = CsrI8View::new(n, n, &offsets, &indices, None).unwrap();
        let mut out = vec![0i32; n * f];
        sparse_i8::aggregate_i8_into(&view, &x, f, I8Reduce::Max, true, &mut out).unwrap();
        for v in 0..n {
            for c in 0..f {
                // With include_self the max is at least the vertex's own
                // level and never exceeds the global max level.
                prop_assert!(out[v * f + c] >= x[v * f + c] as i32);
                prop_assert!(out[v * f + c] <= 127);
            }
        }
    }
}

/// The int8 kernels must report their work through the same counter
/// scheme as the f64 kernels: `int8/gemm_calls`, `int8/macs`,
/// `int8/spmm_calls`.
#[test]
fn int8_trace_counters_mirror_f64_scheme() {
    use phox_trace::{CounterValue, Trace};

    let trace = Trace::new();
    phox_trace::with_installed(trace.clone(), || {
        let a = Quantizer::with_scale(0.1)
            .unwrap()
            .quantize(&Matrix::filled(4, 6, 0.5));
        let b = Quantizer::with_scale(0.1)
            .unwrap()
            .quantize(&Matrix::filled(6, 3, -0.5));
        let _ = a.matmul(&b).unwrap();

        let offsets = [0usize, 1, 2];
        let indices = [1u32, 0];
        let view = CsrI8View::new(2, 2, &offsets, &indices, None).unwrap();
        let _ = sparse_i8::spmm_i8(&view, &[1, 2], 1).unwrap();
    });

    let counters = trace.counters();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(t, n, _)| t == "int8" && n == name)
            .map(|(_, _, v)| match v {
                CounterValue::Int(i) => *i,
                CounterValue::Float(f) => *f as i64,
            })
            .unwrap_or_else(|| panic!("counter int8/{name} missing"))
    };
    assert_eq!(get("gemm_calls"), 1);
    assert_eq!(get("spmm_calls"), 1);
    // One 4x6x3 product plus 2 nnz * 1 feature of SpMM MACs.
    assert_eq!(get("macs"), 4 * 6 * 3 + 2);
}
