//! Property-based tests for the f64 SIMD path: the dispatched kernels
//! (whatever path dispatch selected — AVX2+FMA, or forced-scalar under
//! `PHOX_FORCE_SCALAR=1`) must be *bitwise* equal to the public scalar
//! reference kernels, and the blocked/parallel GEMM built on them must
//! be byte-identical across 1/2/4/8 threads — over arbitrary shapes,
//! `k = 0`, ragged (non-multiple-of-16) inner dimensions, and subnormal
//! operands.
//!
//! CI's `simd-smoke` job runs this suite twice, once per dispatch mode;
//! each run pins its own mode against the same scalar reference, which
//! transitively pins the two modes against each other.

use proptest::prelude::*;

use phox_tensor::gemm::{self, simd};
use phox_tensor::{parallel, Matrix};

/// Strategy: an f64 buffer of exactly `len` elements mixing unit-scale
/// values, exact zeros, huge/tiny magnitudes, and subnormals — the
/// operand classes where a non-fused or reassociated kernel would drift
/// in the last bits.
fn operands(len: usize) -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(-1.0f64..1.0, len),
        proptest::collection::vec(0u8..9, len),
    )
        .prop_map(|(vals, classes)| {
            vals.into_iter()
                .zip(classes)
                .map(|(v, class)| match class {
                    0 => 0.0,
                    1 => -0.0,
                    2 => v * 1e300,
                    3 => v * f64::MIN_POSITIVE,
                    // Subnormals: scale far below MIN_POSITIVE.
                    4 => v * f64::MIN_POSITIVE * 1e-8,
                    _ => v,
                })
                .collect()
        })
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dispatched_dot_bitwise_equals_scalar_reference(
        (a, b) in (0usize..=96).prop_flat_map(|k| (operands(k), operands(k))),
    ) {
        // Covers k = 0 and every ragged tail length around the 16-lane
        // boundary via the shape strategy.
        let reference = simd::dot_scalar(&a, &b);
        let dispatched = simd::dot(&a, &b);
        prop_assert_eq!(
            reference.to_bits(), dispatched.to_bits(),
            "k = {}, ref = {:e}, dispatched = {:e}", a.len(), reference, dispatched
        );
    }

    #[test]
    fn dispatched_axpy_bitwise_equals_scalar_reference(
        (x, out0, b) in (0usize..=80).prop_flat_map(|n| {
            (-2.0f64..2.0, operands(n), operands(n))
        }),
    ) {
        let mut fast = out0.clone();
        let mut slow = out0;
        simd::axpy(&mut fast, x, &b);
        simd::axpy_scalar(&mut slow, x, &b);
        let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
        let slow_bits: Vec<u64> = slow.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_bits, slow_bits);

        let mut fast_u = b.clone();
        let mut slow_u = b.clone();
        simd::axpy_unit(&mut fast_u, &slow);
        simd::axpy_unit_scalar(&mut slow_u, &slow);
        let fast_bits: Vec<u64> = fast_u.iter().map(|v| v.to_bits()).collect();
        let slow_bits: Vec<u64> = slow_u.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_bits, slow_bits);
    }

    #[test]
    fn blocked_gemm_bitwise_equals_scalar_reference_gemm(
        ((m, k, n), a, b) in (1usize..=20, 0usize..=40, 1usize..=20)
            .prop_flat_map(|(m, k, n)| {
                (Just((m, k, n)), operands(m * k), operands(k * n))
            }),
    ) {
        // Rebuild the blocked product from the scalar reference dot over
        // the same packed-Bᵀ panels; the production kernel must match it
        // bitwise no matter which dispatch path is active.
        let am = Matrix::from_vec(m, k, a).unwrap();
        let bm = Matrix::from_vec(k, n, b).unwrap();
        let blocked = gemm::matmul_blocked(&am, &bm).unwrap();
        let bt = gemm::transpose_blocked(&bm);
        let btv = bt.as_slice();
        let av = am.as_slice();
        for i in 0..m {
            for j in 0..n {
                let reference =
                    simd::dot_scalar(&av[i * k..(i + 1) * k], &btv[j * k..(j + 1) * k]);
                prop_assert_eq!(
                    blocked.get(i, j).to_bits(), reference.to_bits(),
                    "({}, {}) of {}x{}x{}", i, j, m, k, n
                );
            }
        }
    }

    #[test]
    fn gemm_is_byte_identical_across_thread_counts(
        ((m, k, n), a, b) in (1usize..=24, 0usize..=32, 1usize..=24)
            .prop_flat_map(|(m, k, n)| {
                (Just((m, k, n)), operands(m * k), operands(k * n))
            }),
    ) {
        let am = Matrix::from_vec(m, k, a).unwrap();
        let bm = Matrix::from_vec(k, n, b).unwrap();
        let serial = gemm::matmul_blocked(&am, &bm).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let par = parallel::with_threads(threads, || gemm::matmul(&am, &bm).unwrap());
            prop_assert_eq!(bits(&par), bits(&serial), "threads = {}", threads);
        }
    }
}

/// Thread-invariance must hold above the parallel threshold too (the
/// proptest shapes stay below [`gemm::PAR_ELEMS_MIN`] for speed, so this
/// deterministic case pins the banded path with real worker threads).
#[test]
fn large_gemm_is_byte_identical_across_thread_counts() {
    let a = phox_tensor::Prng::new(40).fill_uniform(96, 96, -1.0, 1.0);
    let b = phox_tensor::Prng::new(41).fill_uniform(96, 96, -1.0, 1.0);
    let serial = gemm::matmul_blocked(&a, &b).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let par = parallel::with_threads(threads, || gemm::matmul(&a, &b).unwrap());
        assert_eq!(bits(&par), bits(&serial), "threads = {threads}");
    }
}

/// The dispatched dot must remain bit-identical to the scalar reference
/// on fully subnormal panels long enough to engage the 16-lane body.
#[test]
fn subnormal_panels_agree_bitwise() {
    let a: Vec<f64> = (0..333)
        .map(|i| f64::from_bits(1 + (i as u64 * 2654435761) % ((1u64 << 52) - 1)))
        .collect();
    let b: Vec<f64> = (0..333)
        .map(|i| f64::from_bits(1 + (i as u64 * 40503) % ((1u64 << 52) - 1)) * 1e-10)
        .collect();
    assert!(a.iter().all(|v| v.is_subnormal()));
    assert_eq!(
        simd::dot_scalar(&a, &b).to_bits(),
        simd::dot(&a, &b).to_bits()
    );
}
