//! Property-based tests for the numeric substrate.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use phox_tensor::{eig, gemm, ops, parallel, quant, stats, Matrix, Prng, Quantizer};

/// Strategy: a matrix of the given shape with elements in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("length matches"))
}

/// Strategy: a random symmetric matrix.
fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(|m| {
        let mt = m.transpose();
        m.add(&mt).expect("same shape").scale(0.5)
    })
}

proptest! {
    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 5), c in matrix(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-6));
    }

    #[test]
    fn transpose_reverses_product(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn quantization_error_at_most_half_step(m in matrix(4, 4)) {
        let q = Quantizer::calibrate(&m);
        let err = quant::max_quant_error(&m);
        prop_assert!(err <= q.scale() / 2.0 + 1e-12, "err {} step {}", err, q.scale());
    }

    #[test]
    fn quantized_levels_bounded(m in matrix(3, 5)) {
        let q = Quantizer::calibrate(&m).quantize(&m);
        prop_assert!(q.as_i8_slice().iter().all(|&l| (-127..=127).contains(&l)));
    }

    #[test]
    fn eigh_reconstructs_symmetric_matrices(a in symmetric(4)) {
        let e = eig::eigh(&a).unwrap();
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, e.values[i]);
        }
        let rebuilt = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        prop_assert!(rebuilt.approx_eq(&a, 1e-7));
    }

    #[test]
    fn eigh_trace_equals_eigenvalue_sum(a in symmetric(5)) {
        let e = eig::eigh(&a).unwrap();
        let trace: f64 = (0..5).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7);
    }

    #[test]
    fn solve_spd_residual_is_small(b in proptest::collection::vec(-5.0f64..5.0, 4)) {
        // A fixed well-conditioned SPD matrix.
        let mut a = Matrix::identity(4).scale(3.0);
        for i in 0..4usize {
            for j in 0..4usize {
                if i != j {
                    let d = (i as f64 - j as f64).abs();
                    a.set(i, j, (-d).exp() * 0.5);
                }
            }
        }
        let x = eig::solve_spd(&a, &b).unwrap();
        for i in 0..4 {
            let mut ax = 0.0;
            for j in 0..4 {
                ax += a.get(i, j) * x[j];
            }
            prop_assert!((ax - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(m in matrix(3, 6)) {
        let p = ops::softmax_rows(&m);
        for r in 0..3 {
            let s: f64 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn layer_norm_output_is_standardized(m in matrix(2, 8)) {
        let g = vec![1.0; 8];
        let b = vec![0.0; 8];
        let y = ops::layer_norm(&m, &g, &b, 1e-9).unwrap();
        for r in 0..2 {
            let row = y.row(r);
            let mean: f64 = row.iter().sum::<f64>() / 8.0;
            prop_assert!(mean.abs() < 1e-6);
        }
    }

    #[test]
    fn relative_error_is_zero_iff_equal(m in matrix(3, 3)) {
        prop_assert_eq!(stats::relative_error(&m, &m), 0.0);
    }

    #[test]
    fn prng_uniform_stays_in_range(seed in any::<u64>(), lo in -100.0f64..0.0, width in 0.001f64..100.0) {
        let mut rng = Prng::new(seed);
        for _ in 0..50 {
            let v = rng.uniform(lo, lo + width);
            prop_assert!(v >= lo && v < lo + width);
        }
    }

    #[test]
    fn hconcat_then_slice_roundtrips(a in matrix(3, 2), b in matrix(3, 4)) {
        let cat = a.hconcat(&b).unwrap();
        let a2 = cat.col_slice(0, 2).unwrap();
        let b2 = cat.col_slice(2, 6).unwrap();
        prop_assert!(a2.approx_eq(&a, 0.0));
        prop_assert!(b2.approx_eq(&b, 0.0));
    }

    #[test]
    fn frobenius_norm_triangle_inequality(a in matrix(3, 3), b in matrix(3, 3)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }
}

/// Strategy: a matrix with proptest-chosen shape in [1, 40] per side.
fn sized_matrix(max_side: usize) -> impl Strategy<Value = Matrix> {
    (1usize..=max_side, 1usize..=max_side).prop_flat_map(|(r, c)| matrix(r, c))
}

// Equivalence suite for the cache-blocked / parallel GEMM backend: every
// kernel variant must agree with the textbook loop within 1e-12 per
// element, and the parallel driver must be exactly the blocked kernel
// regardless of thread count.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocked_matmul_matches_naive(
        (a, b) in (1usize..=24, 1usize..=24, 1usize..=24)
            .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n))),
    ) {
        let naive = gemm::matmul_naive(&a, &b).unwrap();
        let blocked = gemm::matmul_blocked(&a, &b).unwrap();
        prop_assert!(blocked.approx_eq(&naive, 1e-12));
    }

    #[test]
    fn parallel_matmul_is_thread_count_invariant(
        (a, b) in (1usize..=20, 1usize..=20, 1usize..=20)
            .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n))),
    ) {
        let blocked = gemm::matmul_blocked(&a, &b).unwrap();
        for threads in [1usize, 2, 8] {
            let par = parallel::with_threads(threads, || gemm::matmul(&a, &b).unwrap());
            // The parallel driver partitions rows but computes each row
            // with the identical blocked kernel, so equality is exact.
            prop_assert_eq!(par.as_slice(), blocked.as_slice(), "threads = {}", threads);
        }
    }

    #[test]
    fn blocked_transpose_matches_index_swap(m in sized_matrix(40)) {
        let t = gemm::transpose_blocked(&m);
        prop_assert_eq!(t.rows(), m.cols());
        prop_assert_eq!(t.cols(), m.rows());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn transpose_is_involutive_under_blocked_kernel(m in sized_matrix(40)) {
        let back = gemm::transpose_blocked(&gemm::transpose_blocked(&m));
        prop_assert!(back.approx_eq(&m, 0.0));
    }
}
