//! Analytic SRAM buffer model (CACTI substitute).
//!
//! The paper uses CACTI for *"all the memories and buffers employed in our
//! accelerators"* (§VI). CACTI decomposes an SRAM into wordline/bitline/
//! sense-amp stages whose energy and delay grow roughly with the square
//! root of capacity (H-tree geometry). We use the same scaling law with
//! coefficients calibrated to published CACTI 7 numbers at a 32 nm logic
//! node:
//!
//! | capacity | word | CACTI read energy | model |
//! |---|---|---|---|
//! | 8 KiB   | 8 B  | ≈ 1.7 pJ | 1.66 pJ |
//! | 64 KiB  | 16 B | ≈ 7 pJ   | 6.75 pJ |
//! | 1 MiB   | 32 B | ≈ 40 pJ  | 42 pJ   |
//!
//! which is comfortably within the factor the architecture comparisons
//! need (the EPB figures span orders of magnitude between platforms).

use crate::MemError;

/// Configuration of one SRAM buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SramConfig {
    /// Total capacity, bytes.
    pub capacity_bytes: usize,
    /// Access word width, bytes.
    pub word_bytes: usize,
    /// Number of independent banks (accessed capacity is
    /// `capacity/banks`).
    pub banks: usize,
}

impl Default for SramConfig {
    /// A 64 KiB, 16-byte-word, single-bank buffer.
    fn default() -> Self {
        SramConfig {
            capacity_bytes: 64 * 1024,
            word_bytes: 16,
            banks: 1,
        }
    }
}

/// An SRAM buffer with CACTI-style analytic energy/latency estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sram {
    config: SramConfig,
}

impl Sram {
    /// Builds a validated SRAM model.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] when the capacity is zero, the
    /// word exceeds the per-bank capacity, or `banks == 0`.
    pub fn new(config: SramConfig) -> Result<Self, MemError> {
        if config.capacity_bytes == 0 || config.word_bytes == 0 || config.banks == 0 {
            return Err(MemError::InvalidConfig {
                what: "capacity, word size and bank count must be non-zero",
            });
        }
        if config.word_bytes > config.capacity_bytes / config.banks {
            return Err(MemError::InvalidConfig {
                what: "word size exceeds per-bank capacity",
            });
        }
        Ok(Sram { config })
    }

    /// The configuration.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// Effective capacity seen by one access (per-bank), KiB.
    fn bank_kib(&self) -> f64 {
        self.config.capacity_bytes as f64 / self.config.banks as f64 / 1024.0
    }

    /// Dynamic energy of one read access, J.
    ///
    /// `E = 0.5 pJ · sqrt(KiB_per_bank) · (word/8B)^0.7 + 0.25 pJ`.
    pub fn read_energy_j(&self) -> f64 {
        let word_factor = (self.config.word_bytes as f64 / 8.0).powf(0.7);
        (0.5e-12 * self.bank_kib().sqrt() * word_factor) + 0.25e-12
    }

    /// Dynamic energy of one write access, J (≈ 1.2× read: bitline swing
    /// on both rails).
    pub fn write_energy_j(&self) -> f64 {
        1.2 * self.read_energy_j()
    }

    /// Access latency, s: `t = 0.15 ns + 0.067 ns · sqrt(KiB_per_bank)`.
    pub fn access_latency_s(&self) -> f64 {
        0.15e-9 + 0.067e-9 * self.bank_kib().sqrt()
    }

    /// Static leakage power of the whole array, W
    /// (≈ 10 µW per KiB at 32 nm).
    pub fn leakage_w(&self) -> f64 {
        10e-6 * self.config.capacity_bytes as f64 / 1024.0
    }

    /// Energy to stream `bytes` through the buffer (reads), J.
    pub fn read_bytes_energy_j(&self, bytes: usize) -> f64 {
        self.accesses_for(bytes) as f64 * self.read_energy_j()
    }

    /// Energy to stream `bytes` into the buffer (writes), J.
    pub fn write_bytes_energy_j(&self, bytes: usize) -> f64 {
        self.accesses_for(bytes) as f64 * self.write_energy_j()
    }

    /// Number of word accesses needed for `bytes` (rounded up).
    pub fn accesses_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.config.word_bytes)
    }

    /// Peak streaming bandwidth of the buffer, bytes/s
    /// (`banks · word / latency`).
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        self.config.banks as f64 * self.config.word_bytes as f64 / self.access_latency_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sram(cap: usize, word: usize, banks: usize) -> Sram {
        Sram::new(SramConfig {
            capacity_bytes: cap,
            word_bytes: word,
            banks,
        })
        .unwrap()
    }

    #[test]
    fn calibration_points_match_doc_table() {
        let a = sram(8 * 1024, 8, 1);
        assert!(
            (a.read_energy_j() - 1.66e-12).abs() < 0.05e-12,
            "{}",
            a.read_energy_j()
        );
        let b = sram(64 * 1024, 16, 1);
        assert!(
            (b.read_energy_j() - 6.75e-12).abs() < 0.3e-12,
            "{}",
            b.read_energy_j()
        );
        let c = sram(1024 * 1024, 32, 1);
        assert!(
            (c.read_energy_j() - 42e-12).abs() < 3e-12,
            "{}",
            c.read_energy_j()
        );
    }

    #[test]
    fn energy_grows_with_capacity() {
        assert!(sram(256 * 1024, 16, 1).read_energy_j() > sram(16 * 1024, 16, 1).read_energy_j());
    }

    #[test]
    fn banking_reduces_access_energy_and_latency() {
        let mono = sram(256 * 1024, 16, 1);
        let banked = sram(256 * 1024, 16, 4);
        assert!(banked.read_energy_j() < mono.read_energy_j());
        assert!(banked.access_latency_s() < mono.access_latency_s());
        // Leakage is unchanged (same total cells).
        assert_eq!(banked.leakage_w(), mono.leakage_w());
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let s = sram(64 * 1024, 16, 1);
        assert!(s.write_energy_j() > s.read_energy_j());
    }

    #[test]
    fn streaming_energy_counts_word_accesses() {
        let s = sram(64 * 1024, 16, 1);
        assert_eq!(s.accesses_for(160), 10);
        assert_eq!(s.accesses_for(161), 11);
        assert_eq!(s.accesses_for(0), 0);
        assert!((s.read_bytes_energy_j(160) - 10.0 * s.read_energy_j()).abs() < 1e-24);
    }

    #[test]
    fn bandwidth_scales_with_banks() {
        let one = sram(64 * 1024, 16, 1);
        let four = sram(64 * 1024, 16, 4);
        assert!(four.bandwidth_bytes_per_s() > one.bandwidth_bytes_per_s() * 2.0);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Sram::new(SramConfig {
            capacity_bytes: 0,
            ..SramConfig::default()
        })
        .is_err());
        assert!(Sram::new(SramConfig {
            word_bytes: 0,
            ..SramConfig::default()
        })
        .is_err());
        assert!(Sram::new(SramConfig {
            banks: 0,
            ..SramConfig::default()
        })
        .is_err());
        // Word larger than a bank.
        assert!(Sram::new(SramConfig {
            capacity_bytes: 1024,
            word_bytes: 2048,
            banks: 1,
        })
        .is_err());
    }

    #[test]
    fn leakage_proportional_to_capacity() {
        assert!((sram(1024 * 1024, 16, 1).leakage_w() - 10.24e-3).abs() < 1e-6);
    }
}
