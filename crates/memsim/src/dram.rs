//! Off-chip memory channel model (HBM-class).
//!
//! Both accelerators stream weights and graph data from high-bandwidth
//! memory (the paper's TransPIM comparison explicitly targets HBM
//! dataflows). We model a channel by its sustained bandwidth, per-bit
//! transfer energy, and fixed access latency — the three quantities the
//! architecture simulator consumes.

use crate::MemError;

/// One HBM-class memory channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmChannel {
    /// Sustained bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Transfer energy, J/bit.
    pub energy_per_bit_j: f64,
    /// Row-access latency, s.
    pub latency_s: f64,
}

impl Default for HbmChannel {
    /// An HBM2-class channel: 32 GB/s, 3.9 pJ/bit, 100 ns access.
    fn default() -> Self {
        HbmChannel {
            bandwidth_bytes_per_s: 32e9,
            energy_per_bit_j: 3.9e-12,
            latency_s: 100e-9,
        }
    }
}

impl HbmChannel {
    /// Validates the channel parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] for non-positive values.
    pub fn validated(self) -> Result<Self, MemError> {
        if self.bandwidth_bytes_per_s <= 0.0 || self.energy_per_bit_j <= 0.0 || self.latency_s < 0.0
        {
            return Err(MemError::InvalidConfig {
                what: "channel parameters must be positive",
            });
        }
        Ok(self)
    }

    /// Time to transfer `bytes`, s (latency + streaming).
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Energy to transfer `bytes`, J.
    pub fn transfer_energy_j(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 * self.energy_per_bit_j
    }
}

/// A stack of parallel channels (e.g. a 4-channel HBM stack).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmStack {
    /// Per-channel model.
    pub channel: HbmChannel,
    /// Number of channels striped across.
    pub channels: usize,
}

impl Default for HbmStack {
    /// Four default channels (128 GB/s aggregate).
    fn default() -> Self {
        HbmStack {
            channel: HbmChannel::default(),
            channels: 4,
        }
    }
}

impl HbmStack {
    /// Validates the stack.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] for a zero channel count or an
    /// invalid channel.
    pub fn validated(self) -> Result<Self, MemError> {
        if self.channels == 0 {
            return Err(MemError::InvalidConfig {
                what: "stack needs at least one channel",
            });
        }
        self.channel.validated()?;
        Ok(self)
    }

    /// Aggregate bandwidth, bytes/s.
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        self.channel.bandwidth_bytes_per_s * self.channels as f64
    }

    /// Time to transfer `bytes` striped across all channels, s.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        self.channel.latency_s + bytes as f64 / self.bandwidth_bytes_per_s()
    }

    /// Energy to transfer `bytes`, J (per-bit energy is per-channel
    /// invariant).
    pub fn transfer_energy_j(&self, bytes: usize) -> f64 {
        self.channel.transfer_energy_j(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_channel_numbers() {
        let c = HbmChannel::default().validated().unwrap();
        // 1 KiB: 100 ns + 1024/32e9 = 132 ns.
        let t = c.transfer_time_s(1024);
        assert!((t - 132e-9).abs() < 1e-12, "t = {t}");
        // Energy: 8192 bits · 3.9 pJ = 31.95 nJ... actually 31.9e-9.
        let e = c.transfer_energy_j(1024);
        assert!((e - 1024.0 * 8.0 * 3.9e-12).abs() < 1e-18);
    }

    #[test]
    fn zero_bytes_is_free() {
        let c = HbmChannel::default();
        assert_eq!(c.transfer_time_s(0), 0.0);
        assert_eq!(c.transfer_energy_j(0), 0.0);
    }

    #[test]
    fn stack_bandwidth_scales() {
        let s = HbmStack::default().validated().unwrap();
        assert!((s.bandwidth_bytes_per_s() - 128e9).abs() < 1.0);
        // Large transfers are ~4x faster than one channel.
        let one = s.channel.transfer_time_s(1 << 30);
        let four = s.transfer_time_s(1 << 30);
        assert!(four < one / 3.0);
    }

    #[test]
    fn stack_energy_equals_channel_energy() {
        let s = HbmStack::default();
        assert_eq!(s.transfer_energy_j(4096), s.channel.transfer_energy_j(4096));
    }

    #[test]
    fn validation() {
        assert!(HbmChannel {
            bandwidth_bytes_per_s: 0.0,
            ..HbmChannel::default()
        }
        .validated()
        .is_err());
        assert!(HbmStack {
            channels: 0,
            ..HbmStack::default()
        }
        .validated()
        .is_err());
    }
}

/// An embedded-DRAM macro: denser and cheaper-per-bit than SRAM for the
/// multi-megabyte feature buffers GHOST-class accelerators need, at the
/// cost of refresh power and longer access latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edram {
    /// Capacity, bytes.
    pub capacity_bytes: usize,
    /// Access word width, bytes.
    pub word_bytes: usize,
}

impl Edram {
    /// Builds a validated eDRAM macro.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] for zero sizes or a word wider
    /// than the macro.
    pub fn new(capacity_bytes: usize, word_bytes: usize) -> Result<Self, MemError> {
        if capacity_bytes == 0 || word_bytes == 0 || word_bytes > capacity_bytes {
            return Err(MemError::InvalidConfig {
                what: "eDRAM capacity and word size must be non-zero and consistent",
            });
        }
        Ok(Edram {
            capacity_bytes,
            word_bytes,
        })
    }

    /// Dynamic energy of one access, J — roughly 2× an equally sized
    /// SRAM's bitline energy but with weaker capacity scaling (folded
    /// trench cells): `E = 1 pJ · (KiB)^0.35 · (word/8B)^0.7`.
    pub fn access_energy_j(&self) -> f64 {
        let kib = self.capacity_bytes as f64 / 1024.0;
        let word_factor = (self.word_bytes as f64 / 8.0).powf(0.7);
        1e-12 * kib.powf(0.35) * word_factor
    }

    /// Access latency, s: `t = 1 ns + 0.1 ns · sqrt(KiB)` — several times
    /// an SRAM of the same capacity.
    pub fn access_latency_s(&self) -> f64 {
        1e-9 + 0.1e-9 * (self.capacity_bytes as f64 / 1024.0).sqrt()
    }

    /// Refresh power, W (≈ 1 µW per KiB — the eDRAM tax SRAM does not
    /// pay, but an order of magnitude below SRAM leakage per bit).
    pub fn refresh_power_w(&self) -> f64 {
        1e-6 * self.capacity_bytes as f64 / 1024.0
    }

    /// Energy to stream `bytes` through the macro, J.
    pub fn stream_energy_j(&self, bytes: usize) -> f64 {
        bytes.div_ceil(self.word_bytes) as f64 * self.access_energy_j()
    }
}

#[cfg(test)]
mod edram_tests {
    use super::*;
    use crate::sram::{Sram, SramConfig};

    #[test]
    fn edram_denser_tradeoff_vs_sram() {
        // Same 8 MiB capacity: eDRAM accesses cost less than the big
        // SRAM's, latency is worse, and refresh replaces leakage at a
        // lower price.
        let cap = 8 * 1024 * 1024;
        let edram = Edram::new(cap, 32).unwrap();
        let sram = Sram::new(SramConfig {
            capacity_bytes: cap,
            word_bytes: 32,
            banks: 1,
        })
        .unwrap();
        assert!(edram.access_energy_j() < sram.read_energy_j());
        assert!(edram.access_latency_s() > sram.access_latency_s());
        assert!(edram.refresh_power_w() < sram.leakage_w());
    }

    #[test]
    fn energy_grows_sublinearly_with_capacity() {
        let small = Edram::new(1024 * 1024, 32).unwrap();
        let large = Edram::new(16 * 1024 * 1024, 32).unwrap();
        let ratio = large.access_energy_j() / small.access_energy_j();
        assert!(ratio > 1.0 && ratio < 4.0, "ratio {ratio}");
    }

    #[test]
    fn stream_energy_counts_words() {
        let e = Edram::new(1024 * 1024, 32).unwrap();
        assert!((e.stream_energy_j(320) - 10.0 * e.access_energy_j()).abs() < 1e-24);
        assert_eq!(e.stream_energy_j(0), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Edram::new(0, 16).is_err());
        assert!(Edram::new(1024, 0).is_err());
        assert!(Edram::new(16, 32).is_err());
    }
}
