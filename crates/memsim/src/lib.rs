//! # phox-memsim
//!
//! CACTI-substitute analytic memory models: on-chip SRAM buffers with
//! square-root capacity scaling calibrated to published CACTI 7 numbers,
//! HBM-class off-chip channels, and a [`hierarchy::MemorySystem`] ledger
//! that the TRON and GHOST architecture simulators charge their traffic
//! to.
//!
//! See DESIGN.md's substitution table: the paper obtains buffer
//! performance/energy from CACTI; this crate reproduces the quantities the
//! architecture model actually consumes (energy/access, latency, leakage)
//! with the same scaling behaviour.
//!
//! # Example
//!
//! ```
//! use phox_memsim::sram::{Sram, SramConfig};
//!
//! # fn main() -> Result<(), phox_memsim::MemError> {
//! let buf = Sram::new(SramConfig::default())?;
//! assert!(buf.read_energy_j() > 0.0);
//! assert!(buf.access_latency_s() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dram;
pub mod hierarchy;
pub mod sram;

use std::error::Error;
use std::fmt;

/// Error type for memory model configuration and ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A configuration value was invalid.
    InvalidConfig {
        /// Which constraint was violated.
        what: &'static str,
    },
    /// An access referenced a buffer that does not exist.
    UnknownBuffer {
        /// The buffer name that was requested.
        name: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidConfig { what } => write!(f, "invalid memory configuration: {what}"),
            MemError::UnknownBuffer { name } => write!(f, "unknown buffer: {name}"),
        }
    }
}

impl Error for MemError {}
