//! A named collection of buffers plus an off-chip stack, with an access
//! ledger — the memory subsystem both accelerator simulators charge their
//! traffic to.

use std::collections::BTreeMap;

use crate::dram::HbmStack;
use crate::sram::{Sram, SramConfig};
use crate::MemError;

/// Running totals for one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BufferLedger {
    /// Bytes read so far.
    pub bytes_read: usize,
    /// Bytes written so far.
    pub bytes_written: usize,
    /// Dynamic energy accumulated, J.
    pub energy_j: f64,
    /// Serialized access time accumulated, s.
    pub time_s: f64,
}

/// A memory hierarchy: named on-chip SRAM buffers and one off-chip stack.
///
/// # Example
///
/// ```
/// use phox_memsim::hierarchy::MemorySystem;
/// use phox_memsim::sram::SramConfig;
///
/// # fn main() -> Result<(), phox_memsim::MemError> {
/// let mut mem = MemorySystem::new();
/// mem.add_buffer("weights", SramConfig::default())?;
/// mem.read("weights", 4096)?;
/// assert!(mem.total_dynamic_energy_j() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemorySystem {
    buffers: BTreeMap<String, (Sram, BufferLedger)>,
    offchip: HbmStack,
    offchip_ledger: BufferLedger,
}

impl MemorySystem {
    /// Creates an empty hierarchy with the default HBM stack.
    pub fn new() -> Self {
        MemorySystem::default()
    }

    /// Creates a hierarchy with an explicit off-chip stack.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] if the stack is invalid.
    pub fn with_offchip(offchip: HbmStack) -> Result<Self, MemError> {
        Ok(MemorySystem {
            offchip: offchip.validated()?,
            ..MemorySystem::default()
        })
    }

    /// Adds (or replaces) a named buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidConfig`] when the SRAM configuration is
    /// invalid.
    pub fn add_buffer(&mut self, name: &str, config: SramConfig) -> Result<(), MemError> {
        let sram = Sram::new(config)?;
        self.buffers
            .insert(name.to_owned(), (sram, BufferLedger::default()));
        Ok(())
    }

    /// Names of all buffers.
    pub fn buffer_names(&self) -> Vec<&str> {
        self.buffers.keys().map(String::as_str).collect()
    }

    /// Charges a read of `bytes` to buffer `name`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownBuffer`] when the name is not present.
    pub fn read(&mut self, name: &str, bytes: usize) -> Result<(), MemError> {
        let (sram, ledger) = self
            .buffers
            .get_mut(name)
            .ok_or_else(|| MemError::UnknownBuffer { name: name.into() })?;
        ledger.bytes_read += bytes;
        ledger.energy_j += sram.read_bytes_energy_j(bytes);
        ledger.time_s += sram.accesses_for(bytes) as f64 * sram.access_latency_s();
        Ok(())
    }

    /// Charges a write of `bytes` to buffer `name`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownBuffer`] when the name is not present.
    pub fn write(&mut self, name: &str, bytes: usize) -> Result<(), MemError> {
        let (sram, ledger) = self
            .buffers
            .get_mut(name)
            .ok_or_else(|| MemError::UnknownBuffer { name: name.into() })?;
        ledger.bytes_written += bytes;
        ledger.energy_j += sram.write_bytes_energy_j(bytes);
        ledger.time_s += sram.accesses_for(bytes) as f64 * sram.access_latency_s();
        Ok(())
    }

    /// Charges an off-chip transfer of `bytes` (direction-agnostic).
    pub fn offchip_transfer(&mut self, bytes: usize) {
        self.offchip_ledger.bytes_read += bytes;
        self.offchip_ledger.energy_j += self.offchip.transfer_energy_j(bytes);
        self.offchip_ledger.time_s += self.offchip.transfer_time_s(bytes);
    }

    /// Ledger of one buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownBuffer`] when the name is not present.
    pub fn ledger(&self, name: &str) -> Result<BufferLedger, MemError> {
        self.buffers
            .get(name)
            .map(|(_, l)| *l)
            .ok_or_else(|| MemError::UnknownBuffer { name: name.into() })
    }

    /// Ledger of the off-chip stack.
    pub fn offchip_ledger(&self) -> BufferLedger {
        self.offchip_ledger
    }

    /// Total dynamic energy across all buffers and the off-chip stack, J.
    pub fn total_dynamic_energy_j(&self) -> f64 {
        self.buffers.values().map(|(_, l)| l.energy_j).sum::<f64>() + self.offchip_ledger.energy_j
    }

    /// Total serialized access time, s (upper bound; the architecture
    /// model overlaps most of it with compute).
    pub fn total_time_s(&self) -> f64 {
        self.buffers.values().map(|(_, l)| l.time_s).sum::<f64>() + self.offchip_ledger.time_s
    }

    /// Total leakage power of all on-chip buffers, W.
    pub fn total_leakage_w(&self) -> f64 {
        self.buffers.values().map(|(s, _)| s.leakage_w()).sum()
    }

    /// Resets all ledgers (keeps the configuration).
    pub fn reset(&mut self) {
        for (_, ledger) in self.buffers.values_mut() {
            *ledger = BufferLedger::default();
        }
        self.offchip_ledger = BufferLedger::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> MemorySystem {
        let mut m = MemorySystem::new();
        m.add_buffer("act", SramConfig::default()).unwrap();
        m.add_buffer(
            "wgt",
            SramConfig {
                capacity_bytes: 256 * 1024,
                word_bytes: 32,
                banks: 2,
            },
        )
        .unwrap();
        m
    }

    #[test]
    fn reads_accumulate_energy_and_bytes() {
        let mut m = system();
        m.read("act", 1024).unwrap();
        m.read("act", 1024).unwrap();
        let l = m.ledger("act").unwrap();
        assert_eq!(l.bytes_read, 2048);
        assert!(l.energy_j > 0.0);
        assert!(l.time_s > 0.0);
    }

    #[test]
    fn writes_tracked_separately() {
        let mut m = system();
        m.write("wgt", 4096).unwrap();
        let l = m.ledger("wgt").unwrap();
        assert_eq!(l.bytes_written, 4096);
        assert_eq!(l.bytes_read, 0);
    }

    #[test]
    fn unknown_buffer_errors() {
        let mut m = system();
        assert!(matches!(
            m.read("nope", 1),
            Err(MemError::UnknownBuffer { .. })
        ));
        assert!(m.ledger("nope").is_err());
    }

    #[test]
    fn offchip_counts() {
        let mut m = system();
        m.offchip_transfer(1 << 20);
        assert!(m.offchip_ledger().energy_j > 0.0);
        assert!(m.total_dynamic_energy_j() >= m.offchip_ledger().energy_j);
    }

    #[test]
    fn totals_sum_buffers() {
        let mut m = system();
        m.read("act", 100).unwrap();
        m.write("wgt", 100).unwrap();
        let sum = m.ledger("act").unwrap().energy_j + m.ledger("wgt").unwrap().energy_j;
        assert!((m.total_dynamic_energy_j() - sum).abs() < 1e-20);
    }

    #[test]
    fn leakage_counts_all_buffers() {
        let m = system();
        // 64 KiB + 256 KiB = 320 KiB → 3.2 mW.
        assert!((m.total_leakage_w() - 3.2e-3).abs() < 1e-5);
    }

    #[test]
    fn reset_clears_ledgers_but_keeps_buffers() {
        let mut m = system();
        m.read("act", 1024).unwrap();
        m.offchip_transfer(1024);
        m.reset();
        assert_eq!(m.ledger("act").unwrap().bytes_read, 0);
        assert_eq!(m.offchip_ledger().energy_j, 0.0);
        assert_eq!(m.buffer_names().len(), 2);
    }

    #[test]
    fn replacing_buffer_resets_its_ledger() {
        let mut m = system();
        m.read("act", 1024).unwrap();
        m.add_buffer("act", SramConfig::default()).unwrap();
        assert_eq!(m.ledger("act").unwrap().bytes_read, 0);
    }
}
