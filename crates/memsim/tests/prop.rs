//! Property-based tests for the memory models.

use proptest::prelude::*;

use phox_memsim::dram::{HbmChannel, HbmStack};
use phox_memsim::hierarchy::MemorySystem;
use phox_memsim::sram::{Sram, SramConfig};

proptest! {
    #[test]
    fn sram_energy_monotone_in_capacity(
        cap_kib in 1usize..4096,
        factor in 2usize..8,
    ) {
        let small = Sram::new(SramConfig {
            capacity_bytes: cap_kib * 1024,
            word_bytes: 16,
            banks: 1,
        })
        .unwrap();
        let large = Sram::new(SramConfig {
            capacity_bytes: cap_kib * factor * 1024,
            word_bytes: 16,
            banks: 1,
        })
        .unwrap();
        prop_assert!(large.read_energy_j() > small.read_energy_j());
        prop_assert!(large.access_latency_s() > small.access_latency_s());
        prop_assert!(large.leakage_w() > small.leakage_w());
    }

    #[test]
    fn sram_streaming_energy_linear_in_bytes(
        bytes in 1usize..1_000_000,
    ) {
        let s = Sram::new(SramConfig::default()).unwrap();
        let one = s.read_bytes_energy_j(bytes);
        let two = s.read_bytes_energy_j(2 * bytes);
        // Within one word of rounding, doubling bytes doubles energy.
        prop_assert!((two / one - 2.0).abs() < 0.1, "ratio {}", two / one);
    }

    #[test]
    fn hbm_transfer_time_monotone(bytes in 1usize..100_000_000, extra in 1usize..1_000_000) {
        let c = HbmChannel::default();
        prop_assert!(c.transfer_time_s(bytes + extra) > c.transfer_time_s(bytes));
        prop_assert!(c.transfer_energy_j(bytes + extra) > c.transfer_energy_j(bytes));
    }

    #[test]
    fn stack_never_slower_than_single_channel(bytes in 1usize..100_000_000) {
        let stack = HbmStack::default();
        prop_assert!(stack.transfer_time_s(bytes) <= stack.channel.transfer_time_s(bytes));
    }

    #[test]
    fn ledger_totals_match_sum_of_operations(
        reads in proptest::collection::vec(1usize..10_000, 1..20),
    ) {
        let mut m = MemorySystem::new();
        m.add_buffer("b", SramConfig::default()).unwrap();
        let mut expected_bytes = 0;
        for r in &reads {
            m.read("b", *r).unwrap();
            expected_bytes += r;
        }
        let ledger = m.ledger("b").unwrap();
        prop_assert_eq!(ledger.bytes_read, expected_bytes);
        prop_assert!(ledger.energy_j > 0.0);
        prop_assert!((m.total_dynamic_energy_j() - ledger.energy_j).abs() < 1e-18);
    }

    #[test]
    fn reset_is_idempotent(bytes in 1usize..10_000) {
        let mut m = MemorySystem::new();
        m.add_buffer("b", SramConfig::default()).unwrap();
        m.read("b", bytes).unwrap();
        m.reset();
        m.reset();
        prop_assert_eq!(m.ledger("b").unwrap().bytes_read, 0);
        prop_assert_eq!(m.total_dynamic_energy_j(), 0.0);
    }
}
