//! Cross-platform comparison harness — the machinery behind Figs. 8–11
//! and the paper's headline claims (experiment E8):
//!
//! > *"Our photonic hardware LLM accelerator exhibited at least 14×
//! > better throughput and 8× better energy efficiency \[...\]. Our
//! > photonic graph processing accelerator showed a minimum of 10.2×
//! > throughput improvement and 3.8× better energy efficiency."*

use phox_arch::metrics::PerfReport;
use phox_baselines::roofline::WorkloadKind;
use phox_ghost::{GhostAccelerator, GnnWorkload};
use phox_nn::transformer::TransformerConfig;
use phox_photonics::PhotonicError;
use phox_tron::TronAccelerator;

/// Wraps a baseline-evaluation failure so the baseline's name and the
/// underlying workload error both survive to the top-level report.
fn baseline_failure(name: &str, e: impl std::fmt::Display) -> PhotonicError {
    PhotonicError::Upstream {
        subsystem: "baselines",
        message: format!("{name}: {e}"),
    }
}

/// One row of a comparison figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Platform name.
    pub platform: String,
    /// Throughput, GOPS (Figs. 9/11).
    pub gops: f64,
    /// Energy per bit, J/bit (Figs. 8/10).
    pub epb_j: f64,
    /// End-to-end latency, s.
    pub latency_s: f64,
}

impl ComparisonRow {
    fn from_perf(platform: &str, perf: &PerfReport) -> Self {
        ComparisonRow {
            platform: platform.to_owned(),
            gops: perf.gops(),
            epb_j: perf.epb_j(),
            latency_s: perf.latency_s,
        }
    }
}

/// Records one platform of a comparison figure as a model-time span:
/// duration is the platform's end-to-end latency and the span carries
/// the full per-inference energy, so a trace of a comparison run is the
/// figure's raw data.
fn trace_platform(track: &str, platform: &str, perf: &PerfReport) {
    if !phox_trace::enabled() {
        return;
    }
    phox_trace::active().model_span(
        track,
        format!("platform/{platform}"),
        0.0,
        perf.latency_s,
        Some(perf.energy_j),
        vec![("gops", perf.gops().into()), ("epb_j", perf.epb_j().into())],
    );
}

/// Minimum improvement factors of the photonic accelerator over every
/// platform in a comparison (the paper's "at least N×" claims).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Claims {
    /// Minimum throughput ratio over all comparators.
    pub min_speedup: f64,
    /// Minimum energy-efficiency (EPB) ratio over all comparators.
    pub min_efficiency: f64,
}

/// Runs one transformer workload on TRON and the Fig. 8/9 suite.
///
/// The first row is TRON itself, followed by the baselines in the
/// paper's order.
///
/// # Errors
///
/// Propagates simulation and baseline-evaluation failures.
pub fn tron_comparison(
    tron: &TronAccelerator,
    model: &TransformerConfig,
) -> Result<Vec<ComparisonRow>, PhotonicError> {
    let report = tron.simulate(model)?;
    let census = model.census();
    let track = format!("compare/{}", model.name);
    trace_platform(&track, "TRON", &report.perf);
    let mut rows = vec![ComparisonRow::from_perf("TRON", &report.perf)];
    for b in phox_baselines::transformer_suite() {
        let perf = b
            .evaluate(
                &census,
                WorkloadKind::DenseTransformer,
                model.layers,
                tron.config().batch,
            )
            .map_err(|e| {
                baseline_failure(b.name(), e).ctx("evaluating the transformer baseline suite")
            })?;
        trace_platform(&track, b.name(), &perf);
        rows.push(ComparisonRow::from_perf(b.name(), &perf));
    }
    Ok(rows)
}

/// Runs one GNN workload on GHOST and the Fig. 10/11 suite.
///
/// # Errors
///
/// Propagates simulation and baseline-evaluation failures.
pub fn ghost_comparison(
    ghost: &GhostAccelerator,
    workload: &GnnWorkload,
) -> Result<Vec<ComparisonRow>, PhotonicError> {
    let report = ghost.simulate(workload)?;
    let census = workload.census();
    let layers = workload.model.layers();
    let track = format!("compare/{}/{}", workload.model.kind, workload.shape.name);
    trace_platform(&track, "GHOST", &report.perf);
    let mut rows = vec![ComparisonRow::from_perf("GHOST", &report.perf)];
    for b in phox_baselines::gnn_suite() {
        let perf = b
            .evaluate(&census, WorkloadKind::SparseGnn, layers, 1)
            .map_err(|e| baseline_failure(b.name(), e).ctx("evaluating the GNN baseline suite"))?;
        trace_platform(&track, b.name(), &perf);
        rows.push(ComparisonRow::from_perf(b.name(), &perf));
    }
    Ok(rows)
}

/// Computes the minimum improvement factors of row 0 (the photonic
/// accelerator) over every other row.
///
/// # Errors
///
/// Returns [`PhotonicError::InvalidConfig`] if `rows` has fewer than two
/// entries — there is nothing to compare the accelerator against.
pub fn claims(rows: &[ComparisonRow]) -> Result<Claims, PhotonicError> {
    if rows.len() < 2 {
        return Err(PhotonicError::InvalidConfig {
            what: "claims need the accelerator row plus at least one baseline row",
        }
        .ctx("computing headline claims"));
    }
    let ours = &rows[0];
    let mut min_speedup = f64::INFINITY;
    let mut min_efficiency = f64::INFINITY;
    for other in &rows[1..] {
        min_speedup = min_speedup.min(ours.gops / other.gops);
        min_efficiency = min_efficiency.min(other.epb_j / ours.epb_j);
    }
    Ok(Claims {
        min_speedup,
        min_efficiency,
    })
}

/// Aggregates claims over several comparisons by taking the global
/// minimum (the paper's cross-workload "at least" statement).
pub fn aggregate_claims(all: &[Claims]) -> Claims {
    Claims {
        min_speedup: all
            .iter()
            .map(|c| c.min_speedup)
            .fold(f64::INFINITY, f64::min),
        min_efficiency: all
            .iter()
            .map(|c| c.min_efficiency)
            .fold(f64::INFINITY, f64::min),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_ghost::GhostConfig;
    use phox_nn::datasets::GraphShape;
    use phox_nn::gnn::{GnnConfig, GnnKind};
    use phox_tron::TronConfig;

    #[test]
    fn tron_comparison_has_all_platforms() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let rows = tron_comparison(&tron, &TransformerConfig::bert_base(128)).unwrap();
        assert_eq!(rows.len(), 8); // TRON + 7 baselines
        assert_eq!(rows[0].platform, "TRON");
    }

    #[test]
    fn tron_beats_every_baseline_on_bert() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let rows = tron_comparison(&tron, &TransformerConfig::bert_base(128)).unwrap();
        let c = claims(&rows).unwrap();
        assert!(c.min_speedup > 1.0, "min speedup {}", c.min_speedup);
        assert!(
            c.min_efficiency > 1.0,
            "min efficiency {}",
            c.min_efficiency
        );
    }

    #[test]
    fn ghost_comparison_has_all_platforms() {
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let w = GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        );
        let rows = ghost_comparison(&ghost, &w).unwrap();
        assert_eq!(rows.len(), 10); // GHOST + 9 baselines
        assert_eq!(rows[0].platform, "GHOST");
    }

    #[test]
    fn ghost_beats_every_baseline_on_cora() {
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let w = GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        );
        let rows = ghost_comparison(&ghost, &w).unwrap();
        let c = claims(&rows).unwrap();
        assert!(c.min_speedup > 1.0, "min speedup {}", c.min_speedup);
        assert!(
            c.min_efficiency > 1.0,
            "min efficiency {}",
            c.min_efficiency
        );
    }

    #[test]
    fn claims_on_too_few_rows_is_a_typed_error() {
        let one = vec![ComparisonRow {
            platform: "TRON".to_owned(),
            gops: 1.0,
            epb_j: 1.0,
            latency_s: 1.0,
        }];
        for rows in [&[] as &[ComparisonRow], &one] {
            let err = claims(rows).unwrap_err();
            assert!(matches!(
                err.root_cause(),
                PhotonicError::InvalidConfig { .. }
            ));
            assert!(std::error::Error::source(&err).is_some());
        }
    }

    #[test]
    fn aggregate_takes_global_minimum() {
        let a = Claims {
            min_speedup: 20.0,
            min_efficiency: 9.0,
        };
        let b = Claims {
            min_speedup: 14.0,
            min_efficiency: 12.0,
        };
        let g = aggregate_claims(&[a, b]);
        assert_eq!(g.min_speedup, 14.0);
        assert_eq!(g.min_efficiency, 9.0);
    }
}
