//! # phox-core
//!
//! Facade crate for the `phox` silicon-photonic accelerator simulators —
//! a Rust reproduction of *"Accelerating Neural Networks for Large
//! Language Models and Graph Processing with Silicon Photonics"*
//! (DATE 2024).
//!
//! Re-exports the whole workspace and adds the [`comparison`] harness
//! that regenerates the paper's comparison figures and headline claims.
//!
//! # Quickstart
//!
//! ```
//! use phox_core::prelude::*;
//!
//! # fn main() -> Result<(), phox_photonics::PhotonicError> {
//! // Simulate BERT-base inference on the TRON photonic accelerator.
//! let tron = TronAccelerator::new(TronConfig::default())?;
//! let report = tron.simulate(&TransformerConfig::bert_base(128))?;
//! println!("TRON: {:.0} GOPS, {:.3} pJ/bit",
//!          report.perf.gops(), report.perf.epb_j() * 1e12);
//!
//! // And GCN inference over a Cora-shaped graph on GHOST.
//! let ghost = GhostAccelerator::new(GhostConfig::default())?;
//! let workload = GnnWorkload::new(
//!     GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
//!     GraphShape::cora(),
//! );
//! let report = ghost.simulate(&workload)?;
//! assert!(report.perf.gops() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod comparison;

pub use phox_arch as arch;
pub use phox_baselines as baselines;
pub use phox_ghost as ghost;
pub use phox_memsim as memsim;
pub use phox_nn as nn;
pub use phox_photonics as photonics;
pub use phox_serve as serve;
pub use phox_tensor as tensor;
pub use phox_trace as trace;
pub use phox_tron as tron;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use crate::comparison::{
        aggregate_claims, claims, ghost_comparison, tron_comparison, Claims, ComparisonRow,
    };
    pub use phox_arch::metrics::{EnergyLedger, LatencyLedger, PerfReport, ServiceCost};
    pub use phox_baselines::roofline::{RooflinePlatform, WorkloadKind};
    pub use phox_baselines::{gnn_suite, transformer_suite, Baseline};
    pub use phox_ghost::{
        GhostAccelerator, GhostConfig, GhostFunctional, GnnWorkload, Optimizations,
    };
    pub use phox_nn::datasets::GraphShape;
    pub use phox_nn::gnn::{Aggregation, CsrGraph, GnnConfig, GnnKind, GnnModel};
    pub use phox_nn::transformer::{TransformerConfig, TransformerModel};
    pub use phox_photonics::design_space::{RejectionReason, SweepConfig};
    pub use phox_photonics::fault::{
        DeviceFault, FaultImpact, FaultPlan, FaultSchedule, ScheduledFault,
    };
    pub use phox_photonics::mr::MrConfig;
    pub use phox_photonics::{Ctx, PhotonicError};
    pub use phox_serve::{
        standard_mix, FaultContext, HazardTimeline, ProbeConfig, RecoveryPolicy, ServeConfig,
        ServeEngine, ServeReport, ServiceClass,
    };
    pub use phox_tensor::{Matrix, Prng};
    pub use phox_trace::{RunManifest, Trace};
    pub use phox_tron::{TronAccelerator, TronConfig, TronFunctional};
}
