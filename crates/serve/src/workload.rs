//! Workload classes: named request types with a resident/marginal cost
//! split and a share of the arrival mix.

use phox_arch::metrics::ServiceCost;
use phox_ghost::perf::{GhostAccelerator, GnnWorkload};
use phox_nn::datasets::GraphShape;
use phox_nn::gnn::{GnnConfig, GnnKind};
use phox_nn::transformer::TransformerConfig;
use phox_photonics::PhotonicError;
use phox_tron::perf::TronAccelerator;

/// One class of requests the serving layer batches together: requests of
/// the same class share weight residency (same model, same MR-bank
/// programming), so a batch window pays `cost.resident_*` once and
/// `cost.marginal_*` per occupant.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceClass {
    /// Stable class name, used in reports and trace tracks.
    pub name: String,
    /// Resident/marginal cost split of one request of this class.
    pub cost: ServiceCost,
    /// Relative share of the arrival mix (normalised over all classes).
    pub weight: f64,
    /// Queueing-deadline for one service attempt, s: a request that has
    /// waited longer than this since entering the queue (arrival, or
    /// re-entry on retry) times out instead of being served. `None`
    /// disables the deadline.
    pub deadline_s: Option<f64>,
}

impl ServiceClass {
    /// Builds a class after validating the weight.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for non-finite or
    /// non-positive weights.
    pub fn new(
        name: impl Into<String>,
        cost: ServiceCost,
        weight: f64,
    ) -> Result<Self, PhotonicError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "service class weight must be finite and positive",
            });
        }
        Ok(ServiceClass {
            name: name.into(),
            cost,
            weight,
            deadline_s: None,
        })
    }

    /// Attaches a per-attempt queueing deadline to the class.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for a non-finite or
    /// non-positive deadline.
    pub fn with_deadline(mut self, deadline_s: f64) -> Result<Self, PhotonicError> {
        if !deadline_s.is_finite() || deadline_s <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "service class deadline must be finite and positive",
            });
        }
        self.deadline_s = Some(deadline_s);
        Ok(self)
    }

    /// A transformer prefill class: one full forward pass of `model`.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures.
    pub fn transformer_prefill(
        tron: &TronAccelerator,
        model: &TransformerConfig,
        weight: f64,
    ) -> Result<Self, PhotonicError> {
        Self::new(
            format!("prefill/{}", model.name),
            tron.service_cost(model)?,
            weight,
        )
    }

    /// A transformer decode class: a `gen_tokens`-token KV-cached
    /// generation following a `model.seq_len`-token prompt.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures; rejects `gen_tokens == 0`.
    pub fn transformer_decode(
        tron: &TronAccelerator,
        model: &TransformerConfig,
        gen_tokens: usize,
        weight: f64,
    ) -> Result<Self, PhotonicError> {
        Self::new(
            format!("decode/{}x{}", model.name, gen_tokens),
            tron.decode_service_cost(model, gen_tokens)?,
            weight,
        )
    }

    /// A GNN query class: one full-graph inference of `workload`.
    ///
    /// # Errors
    ///
    /// Propagates cost-model failures.
    pub fn gnn_query(
        ghost: &GhostAccelerator,
        workload: &GnnWorkload,
        weight: f64,
    ) -> Result<Self, PhotonicError> {
        Self::new(
            format!("gnn/{}/{}", workload.model.kind, workload.shape.name),
            ghost.service_cost(workload)?,
            weight,
        )
    }
}

/// The default three-class mix the benches and examples serve: BERT-base
/// prefill (50 %), GPT-2 64-token decode (30 %) and a Cora GCN query
/// (20 %) — transformer traffic and graph queries arriving concurrently,
/// as the ROADMAP's serving scenario describes.
///
/// # Errors
///
/// Propagates cost-model failures.
pub fn standard_mix(
    tron: &TronAccelerator,
    ghost: &GhostAccelerator,
) -> Result<Vec<ServiceClass>, PhotonicError> {
    let prefill_model = TransformerConfig::bert_base(128);
    let decode_model = TransformerConfig::gpt2(128);
    let gnn = GnnWorkload::new(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
    );
    Ok(vec![
        ServiceClass::transformer_prefill(tron, &prefill_model, 0.5)?,
        ServiceClass::transformer_decode(tron, &decode_model, 64, 0.3)?,
        ServiceClass::gnn_query(ghost, &gnn, 0.2)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_ghost::config::GhostConfig;
    use phox_tron::config::TronConfig;

    #[test]
    fn standard_mix_builds_three_classes() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let classes = standard_mix(&tron, &ghost).unwrap();
        assert_eq!(classes.len(), 3);
        for c in &classes {
            assert!(c.cost.marginal_s > 0.0, "{}", c.name);
            assert!(c.cost.resident_j > 0.0, "{}", c.name);
        }
        let total: f64 = classes.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_weight_rejected() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let model = TransformerConfig::tiny(16);
        let cost = tron.service_cost(&model).unwrap();
        assert!(ServiceClass::new("x", cost, 0.0).is_err());
        assert!(ServiceClass::new("x", cost, f64::NAN).is_err());
        assert!(ServiceClass::new("x", cost, -1.0).is_err());
    }

    #[test]
    fn deadline_builder_validates() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let model = TransformerConfig::tiny(16);
        let cost = tron.service_cost(&model).unwrap();
        let class = ServiceClass::new("x", cost, 1.0).unwrap();
        assert_eq!(class.deadline_s, None);
        let with = class.clone().with_deadline(5e-3).unwrap();
        assert_eq!(with.deadline_s, Some(5e-3));
        assert!(class.clone().with_deadline(0.0).is_err());
        assert!(class.with_deadline(f64::INFINITY).is_err());
    }
}
