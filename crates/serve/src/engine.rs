//! The serving engine: a serial, deterministic discrete-event loop that
//! batches queued requests into weight-resident windows on the shared
//! accelerator.
//!
//! The scheduling model is intentionally simple and fully reproducible:
//!
//! * Arrivals are pre-generated ([`crate::arrivals::ArrivalTrace`]) and
//!   admitted in time order; a class whose queue is at capacity rejects
//!   the arrival (admission control).
//! * The accelerator serves one batch window at a time. Each window
//!   holds requests of a *single* class, because a window shares weight
//!   residency — the MR-bank programming and HBM weight stream of that
//!   class's model are paid once per window.
//! * The scheduler always opens the next window for the class whose
//!   head-of-line request has waited longest (FIFO across classes,
//!   lowest class index breaking exact ties). It then fills the window
//!   with up to [`ServeConfig::max_batch`] queued requests of that
//!   class; if the queue cannot fill the window, it waits up to
//!   [`ServeConfig::batch_timeout_s`] past the head arrival for more.
//! * Window latency and energy come from the class's
//!   [`phox_arch::metrics::ServiceCost`]:
//!   `window_latency_s(occupancy)` overlaps the occupants' marginal
//!   time with the residency programming, and `window_energy_j`
//!   amortises the resident joules across the occupants.

use std::collections::VecDeque;

use phox_photonics::PhotonicError;
use phox_trace as trace;

use crate::arrivals::ArrivalTrace;
use crate::report::{percentile_s, ClassReport, ServeReport};
use crate::workload::ServiceClass;

/// Serving-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival process.
    pub seed: u64,
    /// Offered load: mean arrival rate of the Poisson process, req/s.
    pub arrival_rate_hz: f64,
    /// Arrival horizon, s. The engine drains all admitted requests after
    /// the last arrival, so the run can finish later than this.
    pub duration_s: f64,
    /// Maximum requests per batch window.
    pub max_batch: usize,
    /// Per-class queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// How long past the head-of-line arrival a under-filled window may
    /// wait for more same-class requests, s.
    pub batch_timeout_s: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0xF0CA,
            arrival_rate_hz: 1_000.0,
            duration_s: 0.1,
            max_batch: 16,
            queue_capacity: 256,
            batch_timeout_s: 200e-6,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), PhotonicError> {
        if self.max_batch == 0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve max_batch must be at least 1",
            });
        }
        if self.queue_capacity == 0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve queue_capacity must be at least 1",
            });
        }
        if !self.batch_timeout_s.is_finite() || self.batch_timeout_s < 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve batch_timeout_s must be finite and non-negative",
            });
        }
        if !self.arrival_rate_hz.is_finite() || self.arrival_rate_hz <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve arrival_rate_hz must be finite and positive",
            });
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve duration_s must be finite and positive",
            });
        }
        Ok(())
    }
}

/// Per-class accumulators the event loop maintains.
struct ClassState {
    queue: VecDeque<QueuedRequest>,
    admitted: u64,
    rejected: u64,
    completed: u64,
    latencies_s: Vec<f64>,
    energy_j: f64,
    occupancy_sum: u64,
    windows: u64,
}

struct QueuedRequest {
    arrive_s: f64,
}

/// The deterministic batched-inference engine.
pub struct ServeEngine {
    config: ServeConfig,
    classes: Vec<ServiceClass>,
}

impl ServeEngine {
    /// Builds an engine after validating the config and class mix.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for degenerate configs
    /// or an empty class list.
    pub fn new(config: ServeConfig, classes: Vec<ServiceClass>) -> Result<Self, PhotonicError> {
        config.validate()?;
        if classes.is_empty() {
            return Err(PhotonicError::InvalidConfig {
                what: "serve engine needs at least one service class",
            });
        }
        Ok(ServeEngine { config, classes })
    }

    /// The configured service classes, in scheduling-priority order.
    pub fn classes(&self) -> &[ServiceClass] {
        &self.classes
    }

    /// Runs the full horizon — generate arrivals, admit, batch, serve,
    /// drain — and returns the steady-state report.
    ///
    /// # Errors
    ///
    /// Propagates arrival-generation failures and reports a
    /// [`PhotonicError::NumericalFailure`] if the queue-conservation
    /// invariant (arrivals = admitted + rejected = completed + rejected
    /// after drain) breaks — that would be an engine bug, never a
    /// workload property.
    pub fn run(&self) -> Result<ServeReport, PhotonicError> {
        let cfg = &self.config;
        let trace_handle = trace::active();
        let arrivals =
            ArrivalTrace::generate(cfg.seed, cfg.arrival_rate_hz, cfg.duration_s, &self.classes)?;
        let events = arrivals.arrivals();
        let mut states: Vec<ClassState> = self
            .classes
            .iter()
            .map(|_| ClassState {
                queue: VecDeque::new(),
                admitted: 0,
                rejected: 0,
                completed: 0,
                latencies_s: Vec::new(),
                energy_j: 0.0,
                occupancy_sum: 0,
                windows: 0,
            })
            .collect();

        let mut next = 0usize; // next un-admitted arrival
        let mut server_free_s = 0.0f64;
        let mut makespan_s = 0.0f64;

        // Admits every arrival at or before `t`, applying per-class
        // admission control, and samples the aggregate queue depth.
        let admit_until = |t: f64, next: &mut usize, states: &mut Vec<ClassState>| {
            let mut changed = false;
            while *next < events.len() && events[*next].arrive_s <= t {
                let ev = &events[*next];
                let state = &mut states[ev.class];
                if state.queue.len() >= cfg.queue_capacity {
                    state.rejected += 1;
                    trace_handle.count("serve", "rejected", 1);
                } else {
                    state.queue.push_back(QueuedRequest {
                        arrive_s: ev.arrive_s,
                    });
                    state.admitted += 1;
                    trace_handle.count("serve", "admitted", 1);
                }
                *next += 1;
                changed = true;
            }
            if changed && trace_handle.is_enabled() {
                let depth: usize = states.iter().map(|s| s.queue.len()).sum();
                trace_handle.sample("serve", "queue_depth", t, depth as f64, Vec::new());
            }
        };

        loop {
            if states.iter().all(|s| s.queue.is_empty()) {
                if next >= events.len() {
                    break; // drained
                }
                // Idle: jump to the next arrival.
                admit_until(events[next].arrive_s, &mut next, &mut states);
                continue;
            }

            // Oldest head-of-line request picks the window's class.
            let mut class = usize::MAX;
            let mut head_s = f64::INFINITY;
            for (i, s) in states.iter().enumerate() {
                if let Some(front) = s.queue.front() {
                    if front.arrive_s < head_s {
                        head_s = front.arrive_s;
                        class = i;
                    }
                }
            }

            // The window opens when the server is free; if it would be
            // under-filled, hold it open up to the batch timeout so more
            // same-class arrivals can join.
            let mut dispatch_s = server_free_s.max(head_s);
            admit_until(dispatch_s, &mut next, &mut states);
            if states[class].queue.len() < cfg.max_batch && next < events.len() {
                dispatch_s = dispatch_s.max(head_s + cfg.batch_timeout_s);
                admit_until(dispatch_s, &mut next, &mut states);
            }

            let state = &mut states[class];
            let occupancy = state.queue.len().min(cfg.max_batch);
            let cost = &self.classes[class].cost;
            let window_latency_s = cost.window_latency_s(occupancy);
            let window_energy_j = cost.window_energy_j(occupancy);
            let done_s = dispatch_s + window_latency_s;
            for _ in 0..occupancy {
                // Occupancy never exceeds the queue length, so the pop
                // cannot fail; an empty queue here is an engine bug.
                let Some(req) = state.queue.pop_front() else {
                    return Err(PhotonicError::NumericalFailure {
                        what: "serve window occupancy",
                        detail: format!(
                            "window for class {} claimed {occupancy} occupants \
                             but the queue ran dry",
                            self.classes[class].name
                        ),
                    });
                };
                state.latencies_s.push(done_s - req.arrive_s);
                state.completed += 1;
            }
            state.energy_j += window_energy_j;
            state.occupancy_sum += occupancy as u64;
            state.windows += 1;
            server_free_s = done_s;
            makespan_s = makespan_s.max(done_s);
            trace_handle.count("serve", "completed", occupancy as i64);
            trace_handle.count("serve", "windows", 1);
            if trace_handle.is_enabled() {
                trace_handle.sample(
                    "serve",
                    "batch_occupancy",
                    dispatch_s,
                    occupancy as f64,
                    vec![(
                        "class",
                        trace::Value::from(self.classes[class].name.as_str()),
                    )],
                );
                trace_handle.model_span(
                    format!("serve/{}", self.classes[class].name),
                    "window",
                    dispatch_s,
                    window_latency_s,
                    Some(window_energy_j),
                    Vec::new(),
                );
            }
        }

        self.finish(&arrivals, states, makespan_s)
    }

    /// Folds the drained per-class accumulators into the report and
    /// checks the conservation invariants.
    fn finish(
        &self,
        arrivals: &ArrivalTrace,
        states: Vec<ClassState>,
        makespan_s: f64,
    ) -> Result<ServeReport, PhotonicError> {
        let admitted: u64 = states.iter().map(|s| s.admitted).sum();
        let rejected: u64 = states.iter().map(|s| s.rejected).sum();
        let completed: u64 = states.iter().map(|s| s.completed).sum();
        let windows: u64 = states.iter().map(|s| s.windows).sum();
        let occupancy_sum: u64 = states.iter().map(|s| s.occupancy_sum).sum();
        if admitted + rejected != arrivals.len() as u64 {
            return Err(PhotonicError::NumericalFailure {
                what: "serve admission conservation",
                detail: format!(
                    "{} arrivals but {admitted} admitted + {rejected} rejected",
                    arrivals.len()
                ),
            });
        }
        if completed != admitted {
            return Err(PhotonicError::NumericalFailure {
                what: "serve queue conservation",
                detail: format!(
                    "{admitted} admitted requests but {completed} completed after drain"
                ),
            });
        }

        let total_energy_j: f64 = states.iter().map(|s| s.energy_j).sum();
        let mut all_latencies: Vec<f64> = Vec::with_capacity(completed as usize);
        for s in &states {
            all_latencies.extend_from_slice(&s.latencies_s);
        }
        let classes = self
            .classes
            .iter()
            .zip(&states)
            .map(|(class, s)| {
                let mean = if s.latencies_s.is_empty() {
                    0.0
                } else {
                    s.latencies_s.iter().sum::<f64>() / s.latencies_s.len() as f64
                };
                ClassReport {
                    name: class.name.clone(),
                    admitted: s.admitted,
                    rejected: s.rejected,
                    completed: s.completed,
                    p50_latency_s: percentile_s(&s.latencies_s, 50.0),
                    p99_latency_s: percentile_s(&s.latencies_s, 99.0),
                    mean_latency_s: mean,
                    mean_occupancy: if s.windows == 0 {
                        0.0
                    } else {
                        s.occupancy_sum as f64 / s.windows as f64
                    },
                    joules_per_request: if s.completed == 0 {
                        0.0
                    } else {
                        s.energy_j / s.completed as f64
                    },
                }
            })
            .collect();

        Ok(ServeReport {
            seed: self.config.seed,
            offered_rate_hz: self.config.arrival_rate_hz,
            arrivals: arrivals.len() as u64,
            admitted,
            rejected,
            completed,
            windows,
            mean_occupancy: if windows == 0 {
                0.0
            } else {
                occupancy_sum as f64 / windows as f64
            },
            sustained_qps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            p50_latency_s: percentile_s(&all_latencies, 50.0),
            p99_latency_s: percentile_s(&all_latencies, 99.0),
            total_energy_j,
            joules_per_request: if completed == 0 {
                0.0
            } else {
                total_energy_j / completed as f64
            },
            makespan_s,
            classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_arch::metrics::ServiceCost;
    use phox_ghost::config::GhostConfig;
    use phox_ghost::perf::GhostAccelerator;
    use phox_tron::config::TronConfig;
    use phox_tron::perf::TronAccelerator;

    fn synthetic_class(weight: f64) -> ServiceClass {
        ServiceClass::new(
            "synthetic",
            ServiceCost {
                resident_s: 100e-6,
                resident_j: 1e-3,
                marginal_s: 10e-6,
                marginal_j: 10e-6,
                leakage_w: 0.1,
            },
            weight,
        )
        .unwrap()
    }

    fn run_mix(config: ServeConfig) -> ServeReport {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let classes = crate::workload::standard_mix(&tron, &ghost).unwrap();
        ServeEngine::new(config, classes).unwrap().run().unwrap()
    }

    #[test]
    fn conservation_holds_and_everything_completes() {
        let report = run_mix(ServeConfig {
            arrival_rate_hz: 2_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        });
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert_eq!(report.completed, report.admitted);
        assert!(report.arrivals > 0);
        assert!(report.windows > 0);
        assert!(report.p50_latency_s > 0.0);
        assert!(report.p99_latency_s >= report.p50_latency_s);
        assert!(report.joules_per_request > 0.0);
        let class_completed: u64 = report.classes.iter().map(|c| c.completed).sum();
        assert_eq!(class_completed, report.completed);
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let config = ServeConfig {
            arrival_rate_hz: 3_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        };
        let a = run_mix(config).to_json();
        let b = run_mix(config).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_rises_with_offered_load() {
        let classes = vec![synthetic_class(1.0)];
        let base = ServeConfig {
            duration_s: 0.05,
            batch_timeout_s: 0.0,
            ..ServeConfig::default()
        };
        let slow = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 500.0,
                ..base
            },
            classes.clone(),
        )
        .unwrap()
        .run()
        .unwrap();
        let fast = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 20_000.0,
                ..base
            },
            classes,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            fast.mean_occupancy > slow.mean_occupancy + 1.0,
            "fast {} vs slow {}",
            fast.mean_occupancy,
            slow.mean_occupancy
        );
        // Amortised residency: energy per request falls as batches fill.
        assert!(
            fast.joules_per_request < slow.joules_per_request,
            "fast {} vs slow {}",
            fast.joules_per_request,
            slow.joules_per_request
        );
    }

    #[test]
    fn saturation_rejects_but_conserves() {
        // A slow class at a huge offered rate must overflow the queue.
        let classes = vec![ServiceClass::new(
            "slow",
            ServiceCost {
                resident_s: 10e-3,
                resident_j: 1.0,
                marginal_s: 1e-3,
                marginal_j: 0.1,
                leakage_w: 1.0,
            },
            1.0,
        )
        .unwrap()];
        let report = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 50_000.0,
                duration_s: 0.02,
                max_batch: 4,
                queue_capacity: 8,
                batch_timeout_s: 0.0,
                ..ServeConfig::default()
            },
            classes,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.rejected > 0, "expected overload rejections");
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert_eq!(report.completed, report.admitted);
        // Full windows at saturation.
        assert!(report.mean_occupancy > 3.0, "{}", report.mean_occupancy);
    }

    #[test]
    fn trace_counters_and_samples_are_emitted() {
        use phox_trace::CounterValue;
        let trace = phox_trace::Trace::new();
        let report = phox_trace::with_installed(trace.clone(), || {
            run_mix(ServeConfig {
                arrival_rate_hz: 2_000.0,
                duration_s: 0.01,
                ..ServeConfig::default()
            })
        });
        let counters = trace.counters();
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(t, n, _)| t == "serve" && n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or_else(|| panic!("missing serve/{name} counter"))
        };
        assert_eq!(
            counter("admitted"),
            CounterValue::Int(report.admitted as i64)
        );
        assert_eq!(
            counter("completed"),
            CounterValue::Int(report.completed as i64)
        );
        let events = trace.events();
        assert!(events
            .iter()
            .any(|e| e.track == "serve" && e.name == "queue_depth"));
        assert!(events
            .iter()
            .any(|e| e.track == "serve" && e.name == "batch_occupancy"));
    }

    #[test]
    fn degenerate_configs_rejected() {
        let classes = vec![synthetic_class(1.0)];
        let bad = |f: fn(&mut ServeConfig)| {
            let mut c = ServeConfig::default();
            f(&mut c);
            ServeEngine::new(c, classes.clone()).is_err()
        };
        assert!(bad(|c| c.max_batch = 0));
        assert!(bad(|c| c.queue_capacity = 0));
        assert!(bad(|c| c.batch_timeout_s = -1.0));
        assert!(bad(|c| c.arrival_rate_hz = 0.0));
        assert!(bad(|c| c.duration_s = 0.0));
        assert!(ServeEngine::new(ServeConfig::default(), Vec::new()).is_err());
    }
}
