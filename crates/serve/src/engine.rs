//! The serving engine: a serial, deterministic discrete-event loop that
//! batches queued requests into weight-resident windows on the shared
//! accelerator.
//!
//! The scheduling model is intentionally simple and fully reproducible:
//!
//! * Arrivals are pre-generated ([`crate::arrivals::ArrivalTrace`]) and
//!   admitted in time order; a class whose queue is at capacity rejects
//!   the arrival (admission control).
//! * The accelerator serves one batch window at a time. Each window
//!   holds requests of a *single* class, because a window shares weight
//!   residency — the MR-bank programming and HBM weight stream of that
//!   class's model are paid once per window.
//! * The scheduler always opens the next window for the class whose
//!   head-of-line request has waited longest (FIFO across classes,
//!   lowest class index breaking exact ties). It then fills the window
//!   with up to [`ServeConfig::max_batch`] queued requests of that
//!   class; if the queue cannot fill the window, it waits up to
//!   [`ServeConfig::batch_timeout_s`] past the head arrival for more.
//! * Window latency and energy come from the class's
//!   [`phox_arch::metrics::ServiceCost`]:
//!   `window_latency_s(occupancy)` overlaps the occupants' marginal
//!   time with the residency programming, and `window_energy_j`
//!   amortises the resident joules across the occupants.

use std::collections::VecDeque;

use phox_photonics::{Ctx, PhotonicError};
use phox_trace as trace;

use crate::arrivals::ArrivalTrace;
use crate::health::{FaultContext, HazardState, RecoveryPolicy};
use crate::report::{percentile_s, ClassReport, ServeReport};
use crate::workload::ServiceClass;

/// Serving-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Seed for the arrival process.
    pub seed: u64,
    /// Offered load: mean arrival rate of the Poisson process, req/s.
    pub arrival_rate_hz: f64,
    /// Arrival horizon, s. The engine drains all admitted requests after
    /// the last arrival, so the run can finish later than this.
    pub duration_s: f64,
    /// Maximum requests per batch window.
    pub max_batch: usize,
    /// Per-class queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// How long past the head-of-line arrival a under-filled window may
    /// wait for more same-class requests, s.
    pub batch_timeout_s: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0xF0CA,
            arrival_rate_hz: 1_000.0,
            duration_s: 0.1,
            max_batch: 16,
            queue_capacity: 256,
            batch_timeout_s: 200e-6,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), PhotonicError> {
        if self.max_batch == 0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve max_batch must be at least 1",
            });
        }
        if self.queue_capacity == 0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve queue_capacity must be at least 1",
            });
        }
        if !self.batch_timeout_s.is_finite() || self.batch_timeout_s < 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve batch_timeout_s must be finite and non-negative",
            });
        }
        if !self.arrival_rate_hz.is_finite() || self.arrival_rate_hz <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve arrival_rate_hz must be finite and positive",
            });
        }
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "serve duration_s must be finite and positive",
            });
        }
        Ok(())
    }
}

/// Per-class accumulators the event loop maintains.
struct ClassState {
    queue: VecDeque<QueuedRequest>,
    admitted: u64,
    rejected: u64,
    completed: u64,
    dropped: u64,
    timed_out: u64,
    retried: u64,
    degraded: u64,
    latencies_s: Vec<f64>,
    energy_j: f64,
    occupancy_sum: u64,
    windows: u64,
}

struct QueuedRequest {
    /// Original arrival time — latency and scheduling priority are
    /// measured from here across retries.
    arrive_s: f64,
    /// When the request entered the queue this attempt (arrival, or
    /// retry re-entry) — per-attempt deadlines are measured from here.
    enqueued_s: f64,
    /// Service attempts already failed.
    attempts: u32,
}

/// A request waiting out its retry backoff before re-entering its
/// class queue.
struct RetryEntry {
    class: usize,
    arrive_s: f64,
    ready_s: f64,
    attempts: u32,
    seq: u64,
}

/// The deterministic batched-inference engine.
pub struct ServeEngine {
    config: ServeConfig,
    classes: Vec<ServiceClass>,
    faults: Option<FaultContext>,
}

impl ServeEngine {
    /// Builds an engine after validating the config and class mix.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for degenerate configs
    /// or an empty class list.
    pub fn new(config: ServeConfig, classes: Vec<ServiceClass>) -> Result<Self, PhotonicError> {
        config.validate()?;
        if classes.is_empty() {
            return Err(PhotonicError::InvalidConfig {
                what: "serve engine needs at least one service class",
            });
        }
        Ok(ServeEngine {
            config,
            classes,
            faults: None,
        })
    }

    /// Builds a fault-aware engine: the run consumes `faults.timeline`
    /// as the device's ground truth, observes it through priced
    /// calibration probes, and applies `faults.policy` to failed or
    /// degraded windows.
    ///
    /// An engine built with an **empty** timeline is a strict no-op: it
    /// produces a byte-identical report and trace to [`ServeEngine::new`]
    /// with the same config and classes.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for degenerate configs
    /// or an empty class list.
    pub fn with_faults(
        config: ServeConfig,
        classes: Vec<ServiceClass>,
        faults: FaultContext,
    ) -> Result<Self, PhotonicError> {
        let mut engine = ServeEngine::new(config, classes)?;
        engine.faults = Some(faults);
        Ok(engine)
    }

    /// The configured service classes, in scheduling-priority order.
    pub fn classes(&self) -> &[ServiceClass] {
        &self.classes
    }

    /// The fault context, when the engine was built fault-aware.
    pub fn fault_context(&self) -> Option<&FaultContext> {
        self.faults.as_ref()
    }

    /// Runs the full horizon — generate arrivals, admit, batch, serve,
    /// drain — and returns the steady-state report.
    ///
    /// When the engine was built with [`ServeEngine::with_faults`], the
    /// loop also consumes the hazard timeline: calibration probes
    /// (priced in time and joules) update the engine's *belief* about
    /// the device, windows dispatched during a fatal hazard fail and
    /// their occupants are retried or dropped per the policy, and the
    /// `Degrade` policy pauses through detected finite fatal windows
    /// and serves known-degraded periods in a slower remapped mode.
    ///
    /// # Errors
    ///
    /// Propagates arrival-generation failures and reports a
    /// [`PhotonicError::NumericalFailure`] if the queue-conservation
    /// invariant (arrivals = admitted + rejected, and after drain
    /// admitted = completed + dropped + timed-out) breaks — that
    /// would be an engine bug, never a workload property.
    pub fn run(&self) -> Result<ServeReport, PhotonicError> {
        let cfg = &self.config;
        let trace_handle = trace::active();
        let arrivals =
            ArrivalTrace::generate(cfg.seed, cfg.arrival_rate_hz, cfg.duration_s, &self.classes)?;
        let events = arrivals.arrivals();
        let mut states: Vec<ClassState> = self
            .classes
            .iter()
            .map(|_| ClassState {
                queue: VecDeque::new(),
                admitted: 0,
                rejected: 0,
                completed: 0,
                dropped: 0,
                timed_out: 0,
                retried: 0,
                degraded: 0,
                latencies_s: Vec::new(),
                energy_j: 0.0,
                occupancy_sum: 0,
                windows: 0,
            })
            .collect();

        // Fault machinery, armed only for a non-empty timeline so an
        // empty schedule is a strict no-op against the unfaulted path.
        let faults = self.faults.as_ref().filter(|c| !c.timeline.is_empty());
        let retry_params = faults.and_then(|c| c.policy.retry_params());
        let mut next_probe_s = faults.map_or(f64::INFINITY, |c| c.probe.interval_s);
        let mut known = HazardState::NOMINAL; // belief, updated by probes
        let mut probes: u64 = 0;
        let mut probe_energy_j = 0.0f64;
        let mut failed_windows: u64 = 0;
        // Requests waiting out a retry backoff, ordered by (ready_s, seq).
        let mut retries: VecDeque<RetryEntry> = VecDeque::new();
        let mut retry_seq: u64 = 0;

        let mut next = 0usize; // next un-admitted arrival
        let mut server_free_s = 0.0f64;
        let mut makespan_s = 0.0f64;

        // Admits every arrival and ready retry at or before `t` in time
        // order (arrivals win exact ties), applying per-class admission
        // control, and samples the aggregate queue depth.
        let admit_until = |t: f64,
                           next: &mut usize,
                           states: &mut Vec<ClassState>,
                           retries: &mut VecDeque<RetryEntry>| {
            let mut changed = false;
            loop {
                let arrival_s = events.get(*next).map(|e| e.arrive_s).filter(|&a| a <= t);
                let retry_s = retries.front().map(|r| r.ready_s).filter(|&r| r <= t);
                match (arrival_s, retry_s) {
                    (None, None) => break,
                    (Some(a), r) if r.is_none_or(|r| a <= r) => {
                        let ev = &events[*next];
                        let state = &mut states[ev.class];
                        if state.queue.len() >= cfg.queue_capacity {
                            state.rejected += 1;
                            trace_handle.count("serve", "rejected", 1);
                        } else {
                            state.queue.push_back(QueuedRequest {
                                arrive_s: ev.arrive_s,
                                enqueued_s: ev.arrive_s,
                                attempts: 0,
                            });
                            state.admitted += 1;
                            trace_handle.count("serve", "admitted", 1);
                        }
                        *next += 1;
                        changed = true;
                    }
                    _ => {
                        let Some(entry) = retries.pop_front() else {
                            break;
                        };
                        let state = &mut states[entry.class];
                        if state.queue.len() >= cfg.queue_capacity {
                            // No room to retry into: the request drops.
                            state.dropped += 1;
                            trace_handle.count("serve", "dropped", 1);
                        } else {
                            state.queue.push_back(QueuedRequest {
                                arrive_s: entry.arrive_s,
                                enqueued_s: entry.ready_s,
                                attempts: entry.attempts,
                            });
                        }
                        changed = true;
                    }
                }
            }
            if changed && trace_handle.is_enabled() {
                let depth: usize = states.iter().map(|s| s.queue.len()).sum();
                trace_handle.sample("serve", "queue_depth", t, depth as f64, Vec::new());
            }
        };

        loop {
            if states.iter().all(|s| s.queue.is_empty()) {
                let next_arrival = events.get(next).map(|e| e.arrive_s);
                let next_retry = retries.front().map(|r| r.ready_s);
                let wake_s = match (next_arrival, next_retry) {
                    (None, None) => break, // drained
                    (Some(a), None) => a,
                    (None, Some(r)) => r,
                    (Some(a), Some(r)) => a.min(r),
                };
                // Idle: jump to the next arrival or ready retry.
                admit_until(wake_s, &mut next, &mut states, &mut retries);
                continue;
            }

            // Oldest head-of-line request picks the window's class
            // (original arrival time, so retries keep their priority).
            let mut class = usize::MAX;
            let mut head_s = f64::INFINITY;
            for (i, s) in states.iter().enumerate() {
                if let Some(front) = s.queue.front() {
                    if front.arrive_s < head_s {
                        head_s = front.arrive_s;
                        class = i;
                    }
                }
            }

            // The window opens when the server is free; if it would be
            // under-filled, hold it open up to the batch timeout so more
            // same-class requests can join.
            let mut dispatch_s = server_free_s.max(head_s);
            admit_until(dispatch_s, &mut next, &mut states, &mut retries);
            if states[class].queue.len() < cfg.max_batch
                && (next < events.len() || !retries.is_empty())
            {
                dispatch_s = dispatch_s.max(head_s + cfg.batch_timeout_s);
                admit_until(dispatch_s, &mut next, &mut states, &mut retries);
            }

            // Per-attempt deadlines: requests that waited too long since
            // entering the queue time out instead of being served.
            // Enqueue times are monotonic along the queue, so expired
            // entries form a prefix.
            if let Some(deadline_s) = self.classes[class].deadline_s {
                let state = &mut states[class];
                while let Some(front) = state.queue.front() {
                    if dispatch_s - front.enqueued_s > deadline_s {
                        state.queue.pop_front();
                        state.timed_out += 1;
                        trace_handle.count("serve", "timed_out", 1);
                    } else {
                        break;
                    }
                }
                if state.queue.is_empty() {
                    continue; // everything expired; re-pick a class
                }
            }

            // Health monitor: run a calibration probe ahead of the
            // window when the monitoring interval has elapsed. The probe
            // is the only place the engine reads the ground-truth
            // timeline into its belief.
            if let Some(ctx) = faults {
                if dispatch_s >= next_probe_s {
                    probes += 1;
                    probe_energy_j += ctx.probe.energy_j;
                    // The server is busy through the probe; the window's
                    // own dispatch (or the recovery pause) carries the
                    // time forward from here.
                    dispatch_s += ctx.probe.latency_s;
                    known = ctx.timeline.state_at(dispatch_s);
                    next_probe_s = dispatch_s + ctx.probe.interval_s;
                    trace_handle.count("serve", "probes", 1);
                    if trace_handle.is_enabled() {
                        trace_handle.mark(
                            "serve",
                            "probe",
                            dispatch_s,
                            vec![("fatal", trace::Value::Int(i64::from(known.fatal)))],
                        );
                    }
                    // Graceful degradation: a detected fatal hazard with
                    // a finite clearance is waited out, plus a
                    // recalibration (TO-recompensation) downtime window.
                    if let RecoveryPolicy::Degrade {
                        recalibration_s, ..
                    } = ctx.policy
                    {
                        if known.fatal {
                            if let Some(clear_s) = ctx.timeline.fatal_clear_after(dispatch_s) {
                                if clear_s.is_finite() {
                                    let resume_s = clear_s + recalibration_s;
                                    server_free_s = resume_s;
                                    // Probe again on resume, before the
                                    // next window opens.
                                    next_probe_s = resume_s;
                                    if trace_handle.is_enabled() {
                                        trace_handle.mark(
                                            "serve",
                                            "recalibrate",
                                            resume_s,
                                            Vec::new(),
                                        );
                                    }
                                    continue;
                                }
                            }
                        }
                    }
                }
            }

            // Ground truth at dispatch; the belief (`known`) decides the
            // serving mode, the truth decides the outcome.
            let actual = faults.map_or(HazardState::NOMINAL, |c| c.timeline.state_at(dispatch_s));
            let base_cost = &self.classes[class].cost;
            // Under the Degrade policy, a *detected* degradation serves
            // in a remapped precision-fallback mode: slower on the
            // marginal time, but accuracy-safe.
            let mut fallback_mode = false;
            let degraded_cost = match faults.map(|c| c.policy) {
                Some(RecoveryPolicy::Degrade {
                    fallback_slowdown, ..
                }) if !known.fatal && !known.is_nominal() => {
                    fallback_mode = true;
                    Some(
                        base_cost
                            .degraded(
                                known.marginal_slowdown * fallback_slowdown,
                                known.extra_leakage_w,
                            )
                            .map_err(|e| PhotonicError::upstream("arch", e))
                            .ctx("deriving the degraded serving cost")?,
                    )
                }
                _ => None,
            };
            let cost = degraded_cost.as_ref().unwrap_or(base_cost);

            let state = &mut states[class];
            let occupancy = state.queue.len().min(cfg.max_batch);
            let window_latency_s = cost.window_latency_s(occupancy);
            let window_energy_j = cost.window_energy_j(occupancy);
            let done_s = dispatch_s + window_latency_s;

            if actual.fatal {
                // The window ran and produced garbage; output validation
                // catches it at window end, after the time and energy
                // are spent. Occupants retry (with exponential backoff)
                // or drop, per the policy.
                failed_windows += 1;
                trace_handle.count("serve", "failed_windows", 1);
                for _ in 0..occupancy {
                    let Some(req) = state.queue.pop_front() else {
                        return Err(dry_queue_error(&self.classes[class].name, occupancy));
                    };
                    match retry_params {
                        Some((max_retries, base_backoff_s)) if req.attempts < max_retries => {
                            let attempts = req.attempts + 1;
                            let ready_s = done_s + base_backoff_s * 2f64.powi(req.attempts as i32);
                            retry_seq += 1;
                            let seq = retry_seq;
                            let at =
                                retries.partition_point(|r| (r.ready_s, r.seq) <= (ready_s, seq));
                            retries.insert(
                                at,
                                RetryEntry {
                                    class,
                                    arrive_s: req.arrive_s,
                                    ready_s,
                                    attempts,
                                    seq,
                                },
                            );
                            state.retried += 1;
                            trace_handle.count("serve", "retried", 1);
                        }
                        _ => {
                            state.dropped += 1;
                            trace_handle.count("serve", "dropped", 1);
                        }
                    }
                }
                if trace_handle.is_enabled() {
                    trace_handle.mark("serve", "window_failed", dispatch_s, Vec::new());
                }
            } else {
                // A window served while the device is perturbed counts
                // its occupants as degraded: accuracy-at-risk under
                // None/RetryBackoff, slower-but-safe fallback service
                // under Degrade.
                let serve_degraded = !actual.is_nominal() || fallback_mode;
                for _ in 0..occupancy {
                    // Occupancy never exceeds the queue length, so the
                    // pop cannot fail; an empty queue is an engine bug.
                    let Some(req) = state.queue.pop_front() else {
                        return Err(dry_queue_error(&self.classes[class].name, occupancy));
                    };
                    state.latencies_s.push(done_s - req.arrive_s);
                    state.completed += 1;
                }
                if serve_degraded {
                    state.degraded += occupancy as u64;
                    trace_handle.count("serve", "degraded", occupancy as i64);
                }
                trace_handle.count("serve", "completed", occupancy as i64);
            }
            state.energy_j += window_energy_j;
            state.occupancy_sum += occupancy as u64;
            state.windows += 1;
            server_free_s = done_s;
            makespan_s = makespan_s.max(done_s);
            trace_handle.count("serve", "windows", 1);
            if trace_handle.is_enabled() {
                trace_handle.sample(
                    "serve",
                    "batch_occupancy",
                    dispatch_s,
                    occupancy as f64,
                    vec![(
                        "class",
                        trace::Value::from(self.classes[class].name.as_str()),
                    )],
                );
                trace_handle.model_span(
                    format!("serve/{}", self.classes[class].name),
                    "window",
                    dispatch_s,
                    window_latency_s,
                    Some(window_energy_j),
                    Vec::new(),
                );
            }
        }

        self.finish(
            &arrivals,
            states,
            makespan_s,
            probes,
            probe_energy_j,
            failed_windows,
        )
    }

    /// Folds the drained per-class accumulators into the report and
    /// checks the conservation invariants.
    fn finish(
        &self,
        arrivals: &ArrivalTrace,
        states: Vec<ClassState>,
        makespan_s: f64,
        probes: u64,
        probe_energy_j: f64,
        failed_windows: u64,
    ) -> Result<ServeReport, PhotonicError> {
        let admitted: u64 = states.iter().map(|s| s.admitted).sum();
        let rejected: u64 = states.iter().map(|s| s.rejected).sum();
        let completed: u64 = states.iter().map(|s| s.completed).sum();
        let dropped: u64 = states.iter().map(|s| s.dropped).sum();
        let timed_out: u64 = states.iter().map(|s| s.timed_out).sum();
        let retried: u64 = states.iter().map(|s| s.retried).sum();
        let degraded: u64 = states.iter().map(|s| s.degraded).sum();
        let windows: u64 = states.iter().map(|s| s.windows).sum();
        let occupancy_sum: u64 = states.iter().map(|s| s.occupancy_sum).sum();
        if admitted + rejected != arrivals.len() as u64 {
            return Err(PhotonicError::NumericalFailure {
                what: "serve admission conservation",
                detail: format!(
                    "{} arrivals but {admitted} admitted + {rejected} rejected",
                    arrivals.len()
                ),
            });
        }
        // Every admitted request must reach exactly one terminal state.
        for (class, s) in self.classes.iter().zip(&states) {
            if s.completed + s.dropped + s.timed_out != s.admitted {
                return Err(PhotonicError::NumericalFailure {
                    what: "serve queue conservation",
                    detail: format!(
                        "class {}: {} admitted but {} completed + {} dropped + \
                         {} timed out after drain",
                        class.name, s.admitted, s.completed, s.dropped, s.timed_out
                    ),
                });
            }
        }
        if completed + dropped + timed_out != admitted {
            return Err(PhotonicError::NumericalFailure {
                what: "serve queue conservation",
                detail: format!(
                    "{admitted} admitted requests but {completed} completed + \
                     {dropped} dropped + {timed_out} timed out after drain"
                ),
            });
        }

        let total_energy_j: f64 = states.iter().map(|s| s.energy_j).sum::<f64>() + probe_energy_j;
        let mut all_latencies: Vec<f64> = Vec::with_capacity(completed as usize);
        for s in &states {
            all_latencies.extend_from_slice(&s.latencies_s);
        }
        let classes = self
            .classes
            .iter()
            .zip(&states)
            .map(|(class, s)| {
                let mean = if s.latencies_s.is_empty() {
                    0.0
                } else {
                    s.latencies_s.iter().sum::<f64>() / s.latencies_s.len() as f64
                };
                ClassReport {
                    name: class.name.clone(),
                    admitted: s.admitted,
                    rejected: s.rejected,
                    completed: s.completed,
                    dropped: s.dropped,
                    timed_out: s.timed_out,
                    retried: s.retried,
                    degraded: s.degraded,
                    p50_latency_s: percentile_s(&s.latencies_s, 50.0),
                    p99_latency_s: percentile_s(&s.latencies_s, 99.0),
                    mean_latency_s: mean,
                    mean_occupancy: if s.windows == 0 {
                        0.0
                    } else {
                        s.occupancy_sum as f64 / s.windows as f64
                    },
                    joules_per_request: if s.completed == 0 {
                        0.0
                    } else {
                        s.energy_j / s.completed as f64
                    },
                }
            })
            .collect();

        Ok(ServeReport {
            seed: self.config.seed,
            offered_rate_hz: self.config.arrival_rate_hz,
            arrivals: arrivals.len() as u64,
            admitted,
            rejected,
            completed,
            dropped,
            timed_out,
            retried,
            degraded,
            windows,
            failed_windows,
            probes,
            mean_occupancy: if windows == 0 {
                0.0
            } else {
                occupancy_sum as f64 / windows as f64
            },
            sustained_qps: if makespan_s > 0.0 {
                completed as f64 / makespan_s
            } else {
                0.0
            },
            p50_latency_s: percentile_s(&all_latencies, 50.0),
            p99_latency_s: percentile_s(&all_latencies, 99.0),
            total_energy_j,
            joules_per_request: if completed == 0 {
                0.0
            } else {
                total_energy_j / completed as f64
            },
            makespan_s,
            classes,
        })
    }
}

fn dry_queue_error(class: &str, occupancy: usize) -> PhotonicError {
    PhotonicError::NumericalFailure {
        what: "serve window occupancy",
        detail: format!(
            "window for class {class} claimed {occupancy} occupants but the queue ran dry"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_arch::metrics::ServiceCost;
    use phox_ghost::config::GhostConfig;
    use phox_ghost::perf::GhostAccelerator;
    use phox_tron::config::TronConfig;
    use phox_tron::perf::TronAccelerator;

    fn synthetic_class(weight: f64) -> ServiceClass {
        ServiceClass::new(
            "synthetic",
            ServiceCost {
                resident_s: 100e-6,
                resident_j: 1e-3,
                marginal_s: 10e-6,
                marginal_j: 10e-6,
                leakage_w: 0.1,
            },
            weight,
        )
        .unwrap()
    }

    fn run_mix(config: ServeConfig) -> ServeReport {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let classes = crate::workload::standard_mix(&tron, &ghost).unwrap();
        ServeEngine::new(config, classes).unwrap().run().unwrap()
    }

    #[test]
    fn conservation_holds_and_everything_completes() {
        let report = run_mix(ServeConfig {
            arrival_rate_hz: 2_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        });
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert_eq!(report.completed, report.admitted);
        assert!(report.arrivals > 0);
        assert!(report.windows > 0);
        assert!(report.p50_latency_s > 0.0);
        assert!(report.p99_latency_s >= report.p50_latency_s);
        assert!(report.joules_per_request > 0.0);
        let class_completed: u64 = report.classes.iter().map(|c| c.completed).sum();
        assert_eq!(class_completed, report.completed);
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let config = ServeConfig {
            arrival_rate_hz: 3_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        };
        let a = run_mix(config).to_json();
        let b = run_mix(config).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_rises_with_offered_load() {
        let classes = vec![synthetic_class(1.0)];
        let base = ServeConfig {
            duration_s: 0.05,
            batch_timeout_s: 0.0,
            ..ServeConfig::default()
        };
        let slow = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 500.0,
                ..base
            },
            classes.clone(),
        )
        .unwrap()
        .run()
        .unwrap();
        let fast = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 20_000.0,
                ..base
            },
            classes,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(
            fast.mean_occupancy > slow.mean_occupancy + 1.0,
            "fast {} vs slow {}",
            fast.mean_occupancy,
            slow.mean_occupancy
        );
        // Amortised residency: energy per request falls as batches fill.
        assert!(
            fast.joules_per_request < slow.joules_per_request,
            "fast {} vs slow {}",
            fast.joules_per_request,
            slow.joules_per_request
        );
    }

    #[test]
    fn saturation_rejects_but_conserves() {
        // A slow class at a huge offered rate must overflow the queue.
        let classes = vec![ServiceClass::new(
            "slow",
            ServiceCost {
                resident_s: 10e-3,
                resident_j: 1.0,
                marginal_s: 1e-3,
                marginal_j: 0.1,
                leakage_w: 1.0,
            },
            1.0,
        )
        .unwrap()];
        let report = ServeEngine::new(
            ServeConfig {
                arrival_rate_hz: 50_000.0,
                duration_s: 0.02,
                max_batch: 4,
                queue_capacity: 8,
                batch_timeout_s: 0.0,
                ..ServeConfig::default()
            },
            classes,
        )
        .unwrap()
        .run()
        .unwrap();
        assert!(report.rejected > 0, "expected overload rejections");
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert_eq!(report.completed, report.admitted);
        // Full windows at saturation.
        assert!(report.mean_occupancy > 3.0, "{}", report.mean_occupancy);
    }

    #[test]
    fn trace_counters_and_samples_are_emitted() {
        use phox_trace::CounterValue;
        let trace = phox_trace::Trace::new();
        let report = phox_trace::with_installed(trace.clone(), || {
            run_mix(ServeConfig {
                arrival_rate_hz: 2_000.0,
                duration_s: 0.01,
                ..ServeConfig::default()
            })
        });
        let counters = trace.counters();
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(t, n, _)| t == "serve" && n == name)
                .map(|(_, _, v)| *v)
                .unwrap_or_else(|| panic!("missing serve/{name} counter"))
        };
        assert_eq!(
            counter("admitted"),
            CounterValue::Int(report.admitted as i64)
        );
        assert_eq!(
            counter("completed"),
            CounterValue::Int(report.completed as i64)
        );
        let events = trace.events();
        assert!(events
            .iter()
            .any(|e| e.track == "serve" && e.name == "queue_depth"));
        assert!(events
            .iter()
            .any(|e| e.track == "serve" && e.name == "batch_occupancy"));
    }

    fn fatal_window(onset_s: f64, clear_s: f64) -> crate::health::HazardTimeline {
        crate::health::HazardTimeline::from_hazards(vec![crate::health::Hazard {
            onset_s,
            clear_s,
            severity: crate::health::Severity::Fatal,
        }])
        .unwrap()
    }

    fn degraded_window(onset_s: f64, clear_s: f64, slowdown: f64) -> crate::health::HazardTimeline {
        crate::health::HazardTimeline::from_hazards(vec![crate::health::Hazard {
            onset_s,
            clear_s,
            severity: crate::health::Severity::Degraded {
                marginal_slowdown: slowdown,
                extra_leakage_w: 0.1,
            },
        }])
        .unwrap()
    }

    fn faulted_run(
        timeline: crate::health::HazardTimeline,
        policy: crate::health::RecoveryPolicy,
    ) -> ServeReport {
        let ctx = crate::health::FaultContext::new(
            timeline,
            policy,
            crate::health::ProbeConfig::default(),
        )
        .unwrap();
        let config = ServeConfig {
            arrival_rate_hz: 2_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        };
        ServeEngine::with_faults(config, vec![synthetic_class(1.0)], ctx)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn empty_timeline_is_a_strict_noop() {
        let config = ServeConfig {
            arrival_rate_hz: 2_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        };
        let plain = ServeEngine::new(config, vec![synthetic_class(1.0)])
            .unwrap()
            .run()
            .unwrap();
        let faulted = faulted_run(
            crate::health::HazardTimeline::empty(),
            crate::health::RecoveryPolicy::Degrade {
                max_retries: 3,
                base_backoff_s: 1e-4,
                recalibration_s: 1e-3,
                fallback_slowdown: 2.0,
            },
        );
        assert_eq!(plain.to_json(), faulted.to_json());
        assert_eq!(faulted.probes, 0);
        assert_eq!(faulted.failed_windows, 0);
    }

    #[test]
    fn permanent_fatal_hazard_drops_everything_without_recovery() {
        let report = faulted_run(
            fatal_window(0.0, f64::INFINITY),
            crate::health::RecoveryPolicy::None,
        );
        assert!(report.admitted > 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.dropped, report.admitted);
        assert!(report.failed_windows > 0);
        assert!(report.probes > 0, "monitoring should still probe");
        // Failed windows still burn energy.
        assert!(report.total_energy_j > 0.0);
    }

    #[test]
    fn retry_backoff_recovers_after_the_hazard_clears() {
        let report = faulted_run(
            fatal_window(0.0, 5e-3),
            crate::health::RecoveryPolicy::RetryBackoff {
                max_retries: 8,
                base_backoff_s: 250e-6,
            },
        );
        assert!(report.retried > 0, "windows inside the hazard must retry");
        assert!(
            report.completed > report.admitted / 2,
            "most requests should complete after the hazard clears: {} of {}",
            report.completed,
            report.admitted
        );
        assert_eq!(
            report.completed + report.dropped + report.timed_out,
            report.admitted
        );
    }

    #[test]
    fn degrade_policy_beats_none_on_availability_under_finite_hazard() {
        let none = faulted_run(fatal_window(0.0, 5e-3), crate::health::RecoveryPolicy::None);
        let degrade = faulted_run(
            fatal_window(0.0, 5e-3),
            crate::health::RecoveryPolicy::Degrade {
                max_retries: 8,
                base_backoff_s: 250e-6,
                recalibration_s: 500e-6,
                fallback_slowdown: 2.0,
            },
        );
        let availability = |r: &ServeReport| r.completed as f64 / r.admitted as f64;
        assert!(
            availability(&degrade) > availability(&none),
            "degrade {} vs none {}",
            availability(&degrade),
            availability(&none)
        );
        assert!(degrade.probes > 0);
    }

    #[test]
    fn detected_degradation_serves_slower_but_safe() {
        // The whole run sits inside a degraded (dead-lane) hazard.
        let none = faulted_run(
            degraded_window(0.0, f64::INFINITY, 2.0),
            crate::health::RecoveryPolicy::None,
        );
        let degrade = faulted_run(
            degraded_window(0.0, f64::INFINITY, 2.0),
            crate::health::RecoveryPolicy::Degrade {
                max_retries: 3,
                base_backoff_s: 250e-6,
                recalibration_s: 500e-6,
                fallback_slowdown: 2.0,
            },
        );
        // Both complete everything: a degraded hazard never fails windows.
        assert_eq!(none.completed, none.admitted);
        assert_eq!(degrade.completed, degrade.admitted);
        assert!(none.degraded > 0, "unmitigated service is accuracy-at-risk");
        assert!(degrade.degraded > 0);
        // Fallback mode pays real marginal time and leakage.
        assert!(
            degrade.joules_per_request > none.joules_per_request,
            "degrade {} vs none {}",
            degrade.joules_per_request,
            none.joules_per_request
        );
        assert!(degrade.p99_latency_s >= none.p99_latency_s);
    }

    #[test]
    fn deadlines_time_out_stale_requests_during_outage() {
        // The Degrade policy pauses through the outage; requests queued
        // during the pause overrun their 2 ms deadline and time out.
        let class = synthetic_class(1.0).with_deadline(2e-3).unwrap();
        let ctx = crate::health::FaultContext::new(
            fatal_window(0.0, 10e-3),
            crate::health::RecoveryPolicy::Degrade {
                max_retries: 2,
                base_backoff_s: 250e-6,
                recalibration_s: 500e-6,
                fallback_slowdown: 2.0,
            },
            crate::health::ProbeConfig::default(),
        )
        .unwrap();
        let config = ServeConfig {
            arrival_rate_hz: 2_000.0,
            duration_s: 0.02,
            ..ServeConfig::default()
        };
        let report = ServeEngine::with_faults(config, vec![class], ctx)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.timed_out > 0, "stale requests must time out");
        assert_eq!(
            report.completed + report.dropped + report.timed_out,
            report.admitted
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        let classes = vec![synthetic_class(1.0)];
        let bad = |f: fn(&mut ServeConfig)| {
            let mut c = ServeConfig::default();
            f(&mut c);
            ServeEngine::new(c, classes.clone()).is_err()
        };
        assert!(bad(|c| c.max_batch = 0));
        assert!(bad(|c| c.queue_capacity = 0));
        assert!(bad(|c| c.batch_timeout_s = -1.0));
        assert!(bad(|c| c.arrival_rate_hz = 0.0));
        assert!(bad(|c| c.duration_s = 0.0));
        assert!(ServeEngine::new(ServeConfig::default(), Vec::new()).is_err());
    }
}
