//! Health monitoring, hazard timelines, and recovery policies for the
//! fault-aware serving engine.
//!
//! The physics layer speaks in device faults ([`FaultSchedule`]: stuck
//! MR cells, thermal drift, dead ADC lanes, laser droop); the serving
//! layer speaks in service outcomes (completed, retried, dropped, timed
//! out). This module is the translation seam between the two:
//!
//! * [`HazardTimeline::resolve_tron`] / [`resolve_ghost`](HazardTimeline::resolve_ghost)
//!   evaluate each scheduled fault against the accelerator's device
//!   models **once, up front** — compensable faults become
//!   [`Severity::Degraded`] windows carrying the dead-lane remap
//!   slowdown and standing compensation power, uncompensatable faults
//!   (drift beyond the tuning range, droop below the noise floor, a
//!   fully dead receiver) become [`Severity::Fatal`] windows.
//! * [`RecoveryPolicy`] states what the engine does about it: nothing,
//!   bounded retry with exponential backoff, or graceful degradation
//!   (probe-driven detection, recalibration downtime, and a slower
//!   precision-fallback serving mode).
//! * [`ProbeConfig`] prices the detection itself — calibration probes
//!   cost model time and joules, so a tighter monitoring interval buys
//!   faster detection at a throughput/energy premium the reports expose.
//!
//! Everything here is deterministic: resolution walks the schedule in
//! event order, and the engine consumes the timeline from its serial
//! model loop.

use phox_ghost::GhostConfig;
use phox_photonics::fault::{FaultPlan, FaultSchedule};
use phox_photonics::mr::MrConfig;
use phox_photonics::noise::NoiseBudget;
use phox_photonics::tuning::HybridTuning;
use phox_photonics::{Ctx, PhotonicError};
use phox_tron::TronConfig;

/// Calibration-probe pricing for the serving engine's health monitor.
///
/// A probe is a short known-input test pattern pushed through the
/// analog datapath and checked digitally; it is the only way the engine
/// *learns* the device state (the hazard timeline itself is ground
/// truth the engine never reads directly between probes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// Minimum model time between probes, s.
    pub interval_s: f64,
    /// Server time one probe occupies, s (the accelerator cannot serve
    /// a window while probing).
    pub latency_s: f64,
    /// Energy one probe costs, J.
    pub energy_j: f64,
}

impl Default for ProbeConfig {
    /// 500 µs between probes, 10 µs per probe, 10 µJ per probe —
    /// a test pattern of a few windows at the accelerators' µs window
    /// scale.
    fn default() -> Self {
        ProbeConfig {
            interval_s: 500e-6,
            latency_s: 10e-6,
            energy_j: 10e-6,
        }
    }
}

impl ProbeConfig {
    fn validate(&self) -> Result<(), PhotonicError> {
        let bad = |field: &str, v: f64| PhotonicError::NumericalFailure {
            what: "serve probe config",
            detail: format!("{field} must be finite and non-negative, got {v}"),
        };
        if !self.interval_s.is_finite() || self.interval_s <= 0.0 {
            return Err(PhotonicError::NumericalFailure {
                what: "serve probe config",
                detail: format!(
                    "interval_s must be finite and positive, got {}",
                    self.interval_s
                ),
            });
        }
        if !self.latency_s.is_finite() || self.latency_s < 0.0 {
            return Err(bad("latency_s", self.latency_s));
        }
        if !self.energy_j.is_finite() || self.energy_j < 0.0 {
            return Err(bad("energy_j", self.energy_j));
        }
        Ok(())
    }
}

/// What the serving engine does when the health monitor detects a
/// hazard, and what happens to the occupants of a failed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryPolicy {
    /// No recovery: occupants of a failed window are dropped, degraded
    /// windows are served as-is (accuracy silently at risk).
    None,
    /// Bounded retry with exponential backoff: occupants of a failed
    /// window re-enter their class queue after
    /// `base_backoff_s * 2^(attempt-1)`, up to `max_retries` attempts,
    /// then drop.
    RetryBackoff {
        /// Retry attempts per request before dropping.
        max_retries: u32,
        /// First-retry backoff, s; doubles per attempt.
        base_backoff_s: f64,
    },
    /// Graceful degradation: retries like
    /// [`RecoveryPolicy::RetryBackoff`], plus — once a probe detects the
    /// hazard — the engine pauses through finite fatal windows (TO
    /// recompensation downtime of `recalibration_s` after the fault
    /// clears) and serves degraded windows in a remapped,
    /// precision-fallback mode that is `fallback_slowdown`× slower on
    /// the marginal (per-request) time but accuracy-safe.
    Degrade {
        /// Retry attempts per request before dropping.
        max_retries: u32,
        /// First-retry backoff, s; doubles per attempt.
        base_backoff_s: f64,
        /// Recalibration downtime after a finite fatal hazard clears, s.
        recalibration_s: f64,
        /// Marginal-time multiplier of the precision-fallback serving
        /// mode (int8 datapath re-verified against the f64 oracle), ≥ 1.
        fallback_slowdown: f64,
    },
}

impl RecoveryPolicy {
    /// Short stable identifier used in reports and benchmark JSON.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::None => "none",
            RecoveryPolicy::RetryBackoff { .. } => "retry_backoff",
            RecoveryPolicy::Degrade { .. } => "degrade",
        }
    }

    /// Retry budget and backoff base, when the policy retries at all.
    pub(crate) fn retry_params(&self) -> Option<(u32, f64)> {
        match *self {
            RecoveryPolicy::None => None,
            RecoveryPolicy::RetryBackoff {
                max_retries,
                base_backoff_s,
            }
            | RecoveryPolicy::Degrade {
                max_retries,
                base_backoff_s,
                ..
            } => Some((max_retries, base_backoff_s)),
        }
    }

    fn validate(&self) -> Result<(), PhotonicError> {
        let bad = |detail: String| PhotonicError::NumericalFailure {
            what: "serve recovery policy",
            detail,
        };
        if let Some((_, backoff)) = self.retry_params() {
            if !backoff.is_finite() || backoff <= 0.0 {
                return Err(bad(format!(
                    "base_backoff_s must be finite and positive, got {backoff}"
                )));
            }
        }
        if let RecoveryPolicy::Degrade {
            recalibration_s,
            fallback_slowdown,
            ..
        } = *self
        {
            if !recalibration_s.is_finite() || recalibration_s < 0.0 {
                return Err(bad(format!(
                    "recalibration_s must be finite and non-negative, got {recalibration_s}"
                )));
            }
            if !fallback_slowdown.is_finite() || fallback_slowdown < 1.0 {
                return Err(bad(format!(
                    "fallback_slowdown must be finite and >= 1, got {fallback_slowdown}"
                )));
            }
        }
        Ok(())
    }
}

/// How badly one hazard window disturbs the accelerator while active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Severity {
    /// Compensable: the datapath keeps producing usable results.
    /// Accuracy is at risk unless the engine remaps around it, which
    /// costs marginal time and standing power.
    Degraded {
        /// Marginal-time multiplier of dead-lane remapping, ≥ 1
        /// (`rows / live_rows`).
        marginal_slowdown: f64,
        /// Standing compensation power while active, W.
        extra_leakage_w: f64,
    },
    /// Uncompensatable (drift beyond the tuning range, droop below the
    /// noise floor): every window dispatched while active fails.
    Fatal,
}

/// One resolved hazard window on the serving timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hazard {
    /// Model time the hazard appears, s.
    pub onset_s: f64,
    /// Model time the hazard clears, s (`f64::INFINITY` = permanent).
    pub clear_s: f64,
    /// Service-level severity while active.
    pub severity: Severity,
}

/// The combined device state at one model-time instant, as the engine's
/// ground truth (and, after a probe, as its belief).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardState {
    /// Whether any fatal hazard is active.
    pub fatal: bool,
    /// Product of active degraded hazards' marginal slowdowns, ≥ 1.
    pub marginal_slowdown: f64,
    /// Sum of active hazards' standing compensation power, W.
    pub extra_leakage_w: f64,
}

impl HazardState {
    /// The fault-free state.
    pub const NOMINAL: HazardState = HazardState {
        fatal: false,
        marginal_slowdown: 1.0,
        extra_leakage_w: 0.0,
    };

    /// Whether this state perturbs service at all.
    pub fn is_nominal(&self) -> bool {
        *self == HazardState::NOMINAL
    }
}

/// A [`FaultSchedule`] pre-resolved against one accelerator's device
/// models into service-level hazard windows.
///
/// Resolution evaluates each scheduled fault **in isolation at full
/// magnitude** through [`FaultPlan::impact`]: a fault whose impact
/// computes is a [`Severity::Degraded`] window (dead-lane slowdown,
/// compensation power), a fault whose impact is a typed error — drift
/// the thermo-optic tuners cannot absorb, droop below the receiver
/// noise floor — is a [`Severity::Fatal`] window. Ramp-in windows are
/// judged at their peak, which is deliberately conservative: the
/// serving layer treats a fault that *will* become fatal as fatal from
/// onset.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardTimeline {
    hazards: Vec<Hazard>,
}

impl HazardTimeline {
    /// The empty timeline: no hazards, ever.
    pub fn empty() -> HazardTimeline {
        HazardTimeline {
            hazards: Vec::new(),
        }
    }

    /// Whether the timeline carries no hazards.
    pub fn is_empty(&self) -> bool {
        self.hazards.is_empty()
    }

    /// The resolved hazard windows, ordered by onset.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// Builds a timeline from explicit hazard windows (sorted by onset
    /// internally). Useful for synthetic availability studies and
    /// tests; physically grounded timelines come from
    /// [`HazardTimeline::resolve_tron`] / [`HazardTimeline::resolve_ghost`].
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::NumericalFailure`] for a window that is
    /// not a valid half-open `[onset, clear)` interval or a degraded
    /// severity with a sub-unity slowdown or negative leakage.
    pub fn from_hazards(mut hazards: Vec<Hazard>) -> Result<HazardTimeline, PhotonicError> {
        for h in &hazards {
            if !h.onset_s.is_finite()
                || h.onset_s < 0.0
                || h.clear_s.is_nan()
                || h.clear_s <= h.onset_s
            {
                return Err(PhotonicError::NumericalFailure {
                    what: "serve hazard timeline",
                    detail: format!(
                        "hazard window [{}, {}) is not a valid half-open interval",
                        h.onset_s, h.clear_s
                    ),
                });
            }
            if let Severity::Degraded {
                marginal_slowdown,
                extra_leakage_w,
            } = h.severity
            {
                if !marginal_slowdown.is_finite()
                    || marginal_slowdown < 1.0
                    || !extra_leakage_w.is_finite()
                    || extra_leakage_w < 0.0
                {
                    return Err(PhotonicError::NumericalFailure {
                        what: "serve hazard timeline",
                        detail: format!(
                            "degraded hazard needs slowdown >= 1 and leakage >= 0, \
                             got {marginal_slowdown} and {extra_leakage_w}"
                        ),
                    });
                }
            }
        }
        hazards.sort_by(|a, b| a.onset_s.total_cmp(&b.onset_s));
        Ok(HazardTimeline { hazards })
    }

    /// Resolves `schedule` against the TRON transformer accelerator's
    /// device models.
    pub fn resolve_tron(
        schedule: &FaultSchedule,
        config: &TronConfig,
    ) -> Result<HazardTimeline, PhotonicError> {
        HazardTimeline::resolve(
            schedule,
            &config.mr,
            &config.tuning,
            &config.noise,
            config.adc.bits,
            config.array_rows,
            config.array_channels,
        )
        .ctx("resolving fault schedule against the TRON device models")
    }

    /// Resolves `schedule` against the GHOST graph accelerator's device
    /// models.
    pub fn resolve_ghost(
        schedule: &FaultSchedule,
        config: &GhostConfig,
    ) -> Result<HazardTimeline, PhotonicError> {
        HazardTimeline::resolve(
            schedule,
            &config.mr,
            &config.tuning,
            &config.noise,
            config.adc.bits,
            config.array_rows,
            config.array_channels,
        )
        .ctx("resolving fault schedule against the GHOST device models")
    }

    /// Resolves a schedule against explicit device models. Geometry
    /// must match the schedule's.
    pub fn resolve(
        schedule: &FaultSchedule,
        mr: &MrConfig,
        tuning: &HybridTuning,
        noise: &NoiseBudget,
        adc_bits: u32,
        array_rows: usize,
        array_channels: usize,
    ) -> Result<HazardTimeline, PhotonicError> {
        if schedule.array_rows != array_rows || schedule.array_channels != array_channels {
            return Err(PhotonicError::NumericalFailure {
                what: "serve hazard timeline",
                detail: format!(
                    "fault schedule geometry {}x{} does not match the accelerator's \
                     bank arrays ({array_rows}x{array_channels})",
                    schedule.array_rows, schedule.array_channels
                ),
            })
            .ctx("resolving hazard timeline");
        }
        let mut hazards = Vec::with_capacity(schedule.events().len());
        for event in schedule.events() {
            let plan = FaultPlan::new(array_rows, array_channels)
                .with_fault(event.fault)
                .ctx("resolving hazard timeline")?;
            let severity = match plan.impact(mr, tuning, noise, adc_bits) {
                Err(_) => Severity::Fatal,
                Ok(impact) => {
                    let live = array_rows - impact.dead_lanes.len();
                    if live == 0 {
                        Severity::Fatal
                    } else {
                        Severity::Degraded {
                            marginal_slowdown: array_rows as f64 / live as f64,
                            extra_leakage_w: impact.compensation_power_w,
                        }
                    }
                }
            };
            hazards.push(Hazard {
                onset_s: event.onset_s,
                clear_s: event.clear_s,
                severity,
            });
        }
        Ok(HazardTimeline { hazards })
    }

    /// The combined device state at model time `t_s`: fatal if any
    /// fatal hazard is active; degraded slowdowns multiply and standing
    /// powers sum.
    pub fn state_at(&self, t_s: f64) -> HazardState {
        let mut state = HazardState::NOMINAL;
        for h in &self.hazards {
            if h.onset_s <= t_s && t_s < h.clear_s {
                match h.severity {
                    Severity::Fatal => state.fatal = true,
                    Severity::Degraded {
                        marginal_slowdown,
                        extra_leakage_w,
                    } => {
                        state.marginal_slowdown *= marginal_slowdown;
                        state.extra_leakage_w += extra_leakage_w;
                    }
                }
            }
        }
        state
    }

    /// When the last fatal hazard active at `t_s` clears — `None` if no
    /// fatal hazard is active, `Some(f64::INFINITY)` if one is
    /// permanent.
    pub fn fatal_clear_after(&self, t_s: f64) -> Option<f64> {
        self.hazards
            .iter()
            .filter(|h| h.severity == Severity::Fatal && h.onset_s <= t_s && t_s < h.clear_s)
            .map(|h| h.clear_s)
            .fold(None, |acc, c| Some(acc.map_or(c, |a: f64| a.max(c))))
    }
}

/// Everything the serving engine needs to run fault-aware: the resolved
/// ground-truth timeline, the recovery policy, and the probe pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultContext {
    /// Ground-truth hazard windows (the engine only *observes* them
    /// through probes).
    pub timeline: HazardTimeline,
    /// What the engine does about detected hazards and failed windows.
    pub policy: RecoveryPolicy,
    /// Calibration-probe pricing for the health monitor.
    pub probe: ProbeConfig,
}

impl FaultContext {
    /// Builds a validated context.
    pub fn new(
        timeline: HazardTimeline,
        policy: RecoveryPolicy,
        probe: ProbeConfig,
    ) -> Result<FaultContext, PhotonicError> {
        policy.validate().ctx("building serving fault context")?;
        probe.validate().ctx("building serving fault context")?;
        Ok(FaultContext {
            timeline,
            policy,
            probe,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_photonics::fault::DeviceFault;

    fn schedule(rows: usize, channels: usize) -> FaultSchedule {
        FaultSchedule::new(rows, channels)
    }

    fn tron_config() -> TronConfig {
        TronConfig::default()
    }

    #[test]
    fn empty_schedule_resolves_to_empty_timeline() {
        let cfg = tron_config();
        let tl = HazardTimeline::resolve_tron(&schedule(cfg.array_rows, cfg.array_channels), &cfg)
            .unwrap();
        assert!(tl.is_empty());
        assert!(tl.state_at(0.0).is_nominal());
        assert_eq!(tl.fatal_clear_after(0.0), None);
    }

    #[test]
    fn dead_lane_resolves_to_degraded_window() {
        let cfg = tron_config();
        let sched = schedule(cfg.array_rows, cfg.array_channels)
            .schedule(1e-3, 3e-3, DeviceFault::DeadAdcLane { lane: 0 })
            .unwrap();
        let tl = HazardTimeline::resolve_tron(&sched, &cfg).unwrap();
        assert_eq!(tl.hazards().len(), 1);
        let state = tl.state_at(2e-3);
        assert!(!state.fatal);
        let expected = cfg.array_rows as f64 / (cfg.array_rows - 1) as f64;
        assert!((state.marginal_slowdown - expected).abs() < 1e-12);
        // Outside the window the state is nominal.
        assert!(tl.state_at(0.5e-3).is_nominal());
        assert!(tl.state_at(3e-3).is_nominal());
    }

    #[test]
    fn uncompensatable_drift_resolves_to_fatal_window() {
        let cfg = tron_config();
        // 10 nm of drift is far beyond the hybrid tuners' range: the
        // impact computation fails, so the hazard is fatal.
        let sched = schedule(cfg.array_rows, cfg.array_channels)
            .schedule(1e-3, 2e-3, DeviceFault::ThermalDrift { drift_nm: 10.0 })
            .unwrap();
        let tl = HazardTimeline::resolve_tron(&sched, &cfg).unwrap();
        assert_eq!(tl.hazards().len(), 1);
        assert!(tl.state_at(1.5e-3).fatal);
        assert_eq!(tl.fatal_clear_after(1.5e-3), Some(2e-3));
        assert_eq!(tl.fatal_clear_after(2.5e-3), None);
    }

    #[test]
    fn overlapping_hazards_compose() {
        let cfg = tron_config();
        let sched = schedule(cfg.array_rows, cfg.array_channels)
            .schedule(0.0, 4e-3, DeviceFault::DeadAdcLane { lane: 0 })
            .and_then(|s| s.schedule(1e-3, 3e-3, DeviceFault::DeadAdcLane { lane: 1 }))
            .unwrap();
        let tl = HazardTimeline::resolve_tron(&sched, &cfg).unwrap();
        let one = cfg.array_rows as f64 / (cfg.array_rows - 1) as f64;
        let state = tl.state_at(2e-3);
        assert!((state.marginal_slowdown - one * one).abs() < 1e-12);
        assert!((tl.state_at(0.5e-3).marginal_slowdown - one).abs() < 1e-12);
    }

    #[test]
    fn geometry_mismatch_is_a_typed_error() {
        let cfg = tron_config();
        let err = HazardTimeline::resolve_tron(&schedule(3, 3), &cfg).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn policies_and_probes_validate() {
        let tl = HazardTimeline::empty();
        assert!(FaultContext::new(
            tl.clone(),
            RecoveryPolicy::RetryBackoff {
                max_retries: 2,
                base_backoff_s: -1.0
            },
            ProbeConfig::default()
        )
        .is_err());
        assert!(FaultContext::new(
            tl.clone(),
            RecoveryPolicy::Degrade {
                max_retries: 2,
                base_backoff_s: 1e-4,
                recalibration_s: 0.0,
                fallback_slowdown: 0.5
            },
            ProbeConfig::default()
        )
        .is_err());
        let probe = ProbeConfig {
            interval_s: 0.0,
            ..ProbeConfig::default()
        };
        assert!(FaultContext::new(tl.clone(), RecoveryPolicy::None, probe).is_err());
        assert!(FaultContext::new(tl, RecoveryPolicy::None, ProbeConfig::default()).is_ok());
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RecoveryPolicy::None.name(), "none");
        assert_eq!(
            RecoveryPolicy::RetryBackoff {
                max_retries: 1,
                base_backoff_s: 1e-4
            }
            .name(),
            "retry_backoff"
        );
        assert_eq!(
            RecoveryPolicy::Degrade {
                max_retries: 1,
                base_backoff_s: 1e-4,
                recalibration_s: 1e-3,
                fallback_slowdown: 2.0
            }
            .name(),
            "degrade"
        );
    }
}
