//! # phox-serve
//!
//! Accelerator-as-a-service: a deterministic discrete-event simulator of
//! the photonic accelerators **under load**, where the paper's one-shot
//! `simulate()` figures become service times in a queueing system.
//!
//! Transformer prefill/decode requests and GNN queries arrive on a
//! seeded open-loop (Poisson) process, pass admission control, and are
//! dynamically batched onto TRON/GHOST with explicit **weight
//! residency**: MR-bank programming/tuning and the HBM weight stream —
//! the [`phox_arch::metrics::ServiceCost`] resident side — are paid once
//! per batch window and amortised across its occupants, instead of once
//! per request. The simulator reports p50/p99 latency, sustained QPS,
//! and joules/request per workload class.
//!
//! Design constraints, matching the rest of the workspace:
//!
//! * **Deterministic.** The event loop is serial and seeded; the same
//!   (seed, config, classes) produce byte-identical reports at any
//!   `PHOX_NUM_THREADS` (proptest-pinned). No wall clock anywhere.
//! * **Cost-model reuse.** Service times and energies come from
//!   [`phox_tron::perf::TronAccelerator::service_cost`] /
//!   [`decode_service_cost`](phox_tron::perf::TronAccelerator::decode_service_cost)
//!   and [`phox_ghost::perf::GhostAccelerator::service_cost`] — the
//!   serving layer adds scheduling, not new device physics.
//! * **Observable.** With a [`phox_trace::Trace`] installed, the engine
//!   emits `serve/*` counters plus queue-depth and batch-occupancy
//!   time-series samples ([`phox_trace::Trace::sample`]).
//! * **Fault-aware.** A [`phox_photonics::fault::FaultSchedule`]
//!   resolved into a [`health::HazardTimeline`] turns the run into an
//!   availability experiment: windows dispatched during uncompensatable
//!   hazards fail, priced calibration probes detect them, and a
//!   [`health::RecoveryPolicy`] decides between dropping, retrying with
//!   exponential backoff, or gracefully degrading. Reports then account
//!   for every admitted request: completed + dropped + timed-out.
//!
//! # Example
//!
//! ```
//! use phox_serve::engine::{ServeConfig, ServeEngine};
//! use phox_serve::workload::standard_mix;
//! use phox_tron::config::TronConfig;
//! use phox_tron::perf::TronAccelerator;
//! use phox_ghost::config::GhostConfig;
//! use phox_ghost::perf::GhostAccelerator;
//!
//! let tron = TronAccelerator::new(TronConfig::default()).unwrap();
//! let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
//! let classes = standard_mix(&tron, &ghost).unwrap();
//! let config = ServeConfig {
//!     arrival_rate_hz: 2_000.0,
//!     duration_s: 0.05,
//!     ..ServeConfig::default()
//! };
//! let report = ServeEngine::new(config, classes).unwrap().run().unwrap();
//! assert!(report.sustained_qps > 0.0);
//! ```

#![warn(missing_docs)]

pub mod arrivals;
pub mod engine;
pub mod health;
pub mod report;
pub mod workload;

pub use arrivals::{Arrival, ArrivalTrace};
pub use engine::{ServeConfig, ServeEngine};
pub use health::{
    FaultContext, Hazard, HazardState, HazardTimeline, ProbeConfig, RecoveryPolicy, Severity,
};
pub use report::{ClassReport, ServeReport};
pub use workload::{standard_mix, ServiceClass};
