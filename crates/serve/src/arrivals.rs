//! Seeded open-loop arrival generation.
//!
//! Requests arrive on a Poisson process: exponential inter-arrival times
//! at the offered rate, with each request's class drawn from the
//! weighted mix. Everything is derived from one [`Prng`] stream, so a
//! (seed, rate, duration, mix) tuple always produces the same trace —
//! the foundation of the engine's bit-identical reports.

use phox_photonics::PhotonicError;
use phox_tensor::Prng;

use crate::workload::ServiceClass;

/// One request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Request id: position in the trace (0-based, arrival order).
    pub id: u64,
    /// Index into the engine's class list.
    pub class: usize,
    /// Arrival time, model seconds from the start of the run.
    pub arrive_s: f64,
}

/// A pre-generated arrival trace, sorted by arrival time.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
    duration_s: f64,
}

impl ArrivalTrace {
    /// Generates the Poisson trace: exponential gaps at `rate_hz` until
    /// `duration_s`, class sampled per arrival from the normalised
    /// `classes` weights.
    ///
    /// # Errors
    ///
    /// Returns [`PhotonicError::InvalidConfig`] for a non-positive rate
    /// or duration, or an empty class list.
    pub fn generate(
        seed: u64,
        rate_hz: f64,
        duration_s: f64,
        classes: &[ServiceClass],
    ) -> Result<Self, PhotonicError> {
        if !rate_hz.is_finite() || rate_hz <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "arrival rate must be finite and positive",
            });
        }
        if !duration_s.is_finite() || duration_s <= 0.0 {
            return Err(PhotonicError::InvalidConfig {
                what: "arrival duration must be finite and positive",
            });
        }
        if classes.is_empty() {
            return Err(PhotonicError::InvalidConfig {
                what: "arrival mix needs at least one service class",
            });
        }
        let total_weight: f64 = classes.iter().map(|c| c.weight).sum();
        let mut rng = Prng::stream(seed, 0x5EBE);
        let mut arrivals = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival: -ln(1-u)/λ, u ∈ [0,1).
            let u = rng.next_f64();
            t += -(1.0 - u).ln() / rate_hz;
            if t >= duration_s {
                break;
            }
            // Weighted class draw on the same stream.
            let mut pick = rng.next_f64() * total_weight;
            let mut class = classes.len() - 1;
            for (i, c) in classes.iter().enumerate() {
                if pick < c.weight {
                    class = i;
                    break;
                }
                pick -= c.weight;
            }
            arrivals.push(Arrival {
                id: arrivals.len() as u64,
                class,
                arrive_s: t,
            });
        }
        Ok(ArrivalTrace {
            arrivals,
            duration_s,
        })
    }

    /// The arrivals, sorted by time (generation order).
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty (possible at very low rate × duration).
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// The configured trace horizon, s.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phox_arch::metrics::ServiceCost;

    fn class(weight: f64) -> ServiceClass {
        ServiceClass::new(
            format!("c{weight}"),
            ServiceCost {
                resident_s: 1e-6,
                resident_j: 1e-6,
                marginal_s: 1e-6,
                marginal_j: 1e-6,
                leakage_w: 0.0,
            },
            weight,
        )
        .unwrap()
    }

    #[test]
    fn trace_is_deterministic_and_sorted() {
        let classes = [class(0.5), class(0.5)];
        let a = ArrivalTrace::generate(7, 10_000.0, 0.01, &classes).unwrap();
        let b = ArrivalTrace::generate(7, 10_000.0, 0.01, &classes).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for w in a.arrivals().windows(2) {
            assert!(w[0].arrive_s <= w[1].arrive_s);
        }
        for (i, arr) in a.arrivals().iter().enumerate() {
            assert_eq!(arr.id, i as u64);
            assert!(arr.arrive_s < a.duration_s());
        }
    }

    #[test]
    fn rate_controls_volume() {
        let classes = [class(1.0)];
        let slow = ArrivalTrace::generate(1, 1_000.0, 0.1, &classes).unwrap();
        let fast = ArrivalTrace::generate(1, 10_000.0, 0.1, &classes).unwrap();
        assert!(
            fast.len() > 5 * slow.len(),
            "{} vs {}",
            fast.len(),
            slow.len()
        );
        // Poisson mean: within a loose factor of rate × duration.
        let expect = 1_000.0 * 0.1;
        assert!((slow.len() as f64) > expect * 0.5 && (slow.len() as f64) < expect * 2.0);
    }

    #[test]
    fn mix_weights_are_respected() {
        let classes = [class(0.9), class(0.1)];
        let tr = ArrivalTrace::generate(3, 50_000.0, 0.1, &classes).unwrap();
        let heavy = tr.arrivals().iter().filter(|a| a.class == 0).count();
        let share = heavy as f64 / tr.len() as f64;
        assert!((0.85..0.95).contains(&share), "share {share}");
    }

    #[test]
    fn degenerate_configs_rejected() {
        let classes = [class(1.0)];
        assert!(ArrivalTrace::generate(0, 0.0, 1.0, &classes).is_err());
        assert!(ArrivalTrace::generate(0, 1.0, 0.0, &classes).is_err());
        assert!(ArrivalTrace::generate(0, 1.0, 1.0, &[]).is_err());
        assert!(ArrivalTrace::generate(0, f64::NAN, 1.0, &classes).is_err());
    }
}
