//! Steady-state serving reports: per-class and aggregate latency,
//! throughput, energy and batching statistics.

use phox_trace::json::{json_number, json_string};

/// Nearest-rank percentile of a latency population. Sorts a copy with
/// `total_cmp`, so the result is deterministic for any input order.
/// Returns 0.0 for an empty population.
pub(crate) fn percentile_s(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Per-class steady-state statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class name (matches [`crate::workload::ServiceClass::name`]).
    pub name: String,
    /// Requests of this class that entered a queue.
    pub admitted: u64,
    /// Requests turned away by admission control (queue full).
    pub rejected: u64,
    /// Requests that finished service.
    pub completed: u64,
    /// Requests lost to failed windows after exhausting their retry
    /// budget (or immediately, under [`crate::health::RecoveryPolicy::None`]).
    pub dropped: u64,
    /// Requests that exceeded their class deadline while queued.
    pub timed_out: u64,
    /// Retry events (re-queues after a failed window); not a terminal
    /// state — a retried request still completes, drops, or times out.
    pub retried: u64,
    /// Completed requests served while the device was perturbed —
    /// accuracy-at-risk without the `Degrade` policy, slower fallback
    /// mode with it.
    pub degraded: u64,
    /// Median request latency (arrival to completion), s.
    pub p50_latency_s: f64,
    /// 99th-percentile request latency, s.
    pub p99_latency_s: f64,
    /// Mean request latency, s.
    pub mean_latency_s: f64,
    /// Mean batch-window occupancy for this class's windows.
    pub mean_occupancy: f64,
    /// Energy per completed request, J — residency amortised across
    /// each window's occupants.
    pub joules_per_request: f64,
}

impl ClassReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"admitted\":{},\"rejected\":{},\"completed\":{},\
             \"dropped\":{},\"timed_out\":{},\"retried\":{},\"degraded\":{},\
             \"p50_latency_s\":{},\"p99_latency_s\":{},\"mean_latency_s\":{},\
             \"mean_occupancy\":{},\"joules_per_request\":{}}}",
            json_string(&self.name),
            self.admitted,
            self.rejected,
            self.completed,
            self.dropped,
            self.timed_out,
            self.retried,
            self.degraded,
            json_number(self.p50_latency_s),
            json_number(self.p99_latency_s),
            json_number(self.mean_latency_s),
            json_number(self.mean_occupancy),
            json_number(self.joules_per_request),
        )
    }
}

/// Aggregate steady-state report for one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Seed the arrival trace and engine ran under.
    pub seed: u64,
    /// Offered arrival rate, requests/s.
    pub offered_rate_hz: f64,
    /// Total arrivals generated over the horizon.
    pub arrivals: u64,
    /// Arrivals admitted into a queue.
    pub admitted: u64,
    /// Arrivals rejected by admission control.
    pub rejected: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests lost to failed windows (terminal).
    pub dropped: u64,
    /// Requests that exceeded their class deadline while queued
    /// (terminal).
    pub timed_out: u64,
    /// Retry events across all classes (non-terminal).
    pub retried: u64,
    /// Completed requests served while the device was perturbed.
    pub degraded: u64,
    /// Batch windows dispatched.
    pub windows: u64,
    /// Windows dispatched during a fatal hazard: time and energy spent,
    /// results discarded.
    pub failed_windows: u64,
    /// Calibration probes the health monitor ran.
    pub probes: u64,
    /// Mean occupancy across all windows.
    pub mean_occupancy: f64,
    /// Completed requests divided by the busy horizon (last completion
    /// time), requests/s.
    pub sustained_qps: f64,
    /// Median latency across all completed requests, s.
    pub p50_latency_s: f64,
    /// 99th-percentile latency across all completed requests, s.
    pub p99_latency_s: f64,
    /// Total energy across all windows, J.
    pub total_energy_j: f64,
    /// Energy per completed request, J.
    pub joules_per_request: f64,
    /// Time of the last completion, s (the busy horizon).
    pub makespan_s: f64,
    /// Per-class breakdowns, in class-declaration order.
    pub classes: Vec<ClassReport>,
}

impl ServeReport {
    /// Serialises the report as one deterministic JSON object. Equal
    /// reports produce byte-identical strings, which is what the
    /// cross-thread determinism tests compare.
    pub fn to_json(&self) -> String {
        let classes: Vec<String> = self.classes.iter().map(|c| c.to_json()).collect();
        format!(
            "{{\"seed\":{},\"offered_rate_hz\":{},\"arrivals\":{},\"admitted\":{},\
             \"rejected\":{},\"completed\":{},\"dropped\":{},\"timed_out\":{},\
             \"retried\":{},\"degraded\":{},\"windows\":{},\"failed_windows\":{},\
             \"probes\":{},\"mean_occupancy\":{},\
             \"sustained_qps\":{},\"p50_latency_s\":{},\"p99_latency_s\":{},\
             \"total_energy_j\":{},\"joules_per_request\":{},\"makespan_s\":{},\
             \"classes\":[{}]}}",
            self.seed,
            json_number(self.offered_rate_hz),
            self.arrivals,
            self.admitted,
            self.rejected,
            self.completed,
            self.dropped,
            self.timed_out,
            self.retried,
            self.degraded,
            self.windows,
            self.failed_windows,
            self.probes,
            json_number(self.mean_occupancy),
            json_number(self.sustained_qps),
            json_number(self.p50_latency_s),
            json_number(self.p99_latency_s),
            json_number(self.total_energy_j),
            json_number(self.joules_per_request),
            json_number(self.makespan_s),
            classes.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_s(&v, 50.0), 3.0);
        assert_eq!(percentile_s(&v, 99.0), 5.0);
        assert_eq!(percentile_s(&v, 100.0), 5.0);
        assert_eq!(percentile_s(&[], 50.0), 0.0);
        assert_eq!(percentile_s(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn json_is_deterministic() {
        let report = ServeReport {
            seed: 3,
            offered_rate_hz: 1000.0,
            arrivals: 10,
            admitted: 9,
            rejected: 1,
            completed: 8,
            dropped: 1,
            timed_out: 0,
            retried: 2,
            degraded: 3,
            windows: 4,
            failed_windows: 1,
            probes: 5,
            mean_occupancy: 2.25,
            sustained_qps: 900.0,
            p50_latency_s: 1e-3,
            p99_latency_s: 2e-3,
            total_energy_j: 0.5,
            joules_per_request: 0.5 / 9.0,
            makespan_s: 0.01,
            classes: vec![ClassReport {
                name: "prefill/bert-base".into(),
                admitted: 9,
                rejected: 1,
                completed: 8,
                dropped: 1,
                timed_out: 0,
                retried: 2,
                degraded: 3,
                p50_latency_s: 1e-3,
                p99_latency_s: 2e-3,
                mean_latency_s: 1.1e-3,
                mean_occupancy: 2.25,
                joules_per_request: 0.5 / 9.0,
            }],
        };
        let a = report.to_json();
        let b = report.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"completed\":8"));
        assert!(a.contains("\"dropped\":1"));
        assert!(a.contains("\"timed_out\":0"));
        assert!(a.contains("\"retried\":2"));
        assert!(a.contains("\"degraded\":3"));
        assert!(a.contains("\"failed_windows\":1"));
        assert!(a.contains("\"probes\":5"));
        assert!(a.contains("prefill/bert-base"));
    }
}
