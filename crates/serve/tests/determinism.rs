//! Determinism and conservation properties of the serving engine.
//!
//! The engine's report must be a pure function of (seed, config,
//! classes): byte-identical JSON at any thread-pool width, with the
//! queue-conservation invariant holding on every admissible config.

use proptest::prelude::*;

use phox_arch::metrics::ServiceCost;
use phox_ghost::config::GhostConfig;
use phox_ghost::perf::GhostAccelerator;
use phox_serve::{standard_mix, ServeConfig, ServeEngine, ServeReport, ServiceClass};
use phox_tensor::parallel::with_threads;
use phox_tron::config::TronConfig;
use phox_tron::perf::TronAccelerator;

fn synthetic_classes(costs: &[(f64, f64, f64, f64)]) -> Vec<ServiceClass> {
    costs
        .iter()
        .enumerate()
        .map(|(i, &(resident_s, resident_j, marginal_s, marginal_j))| {
            ServiceClass::new(
                format!("class{i}"),
                ServiceCost {
                    resident_s,
                    resident_j,
                    marginal_s,
                    marginal_j,
                    leakage_w: 0.05,
                },
                1.0 + i as f64,
            )
            .expect("synthetic class")
        })
        .collect()
}

fn run(config: ServeConfig, classes: Vec<ServiceClass>) -> ServeReport {
    ServeEngine::new(config, classes)
        .expect("engine")
        .run()
        .expect("run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same (seed, config, arrival trace) → byte-identical report JSON
    /// across 1/2/4/8-thread pools. The engine is serial by design, so
    /// any divergence means hidden nondeterminism leaked in.
    #[test]
    fn reports_are_byte_identical_across_thread_counts(
        seed in any::<u64>(),
        rate in 500.0f64..20_000.0,
        duration in 0.002f64..0.02,
        max_batch in 1usize..32,
        queue_capacity in 1usize..128,
        timeout_us in 0.0f64..500.0,
    ) {
        let config = ServeConfig {
            seed,
            arrival_rate_hz: rate,
            duration_s: duration,
            max_batch,
            queue_capacity,
            batch_timeout_s: timeout_us * 1e-6,
        };
        let costs = [
            (100e-6, 1e-3, 10e-6, 20e-6),
            (30e-6, 4e-4, 25e-6, 5e-6),
        ];
        let baseline = with_threads(1, || {
            run(config, synthetic_classes(&costs)).to_json()
        });
        for threads in [2usize, 4, 8] {
            let report = with_threads(threads, || {
                run(config, synthetic_classes(&costs)).to_json()
            });
            prop_assert_eq!(&baseline, &report, "diverged at {} threads", threads);
        }
    }

    /// Queue conservation at drain: every arrival is admitted or
    /// rejected, every admitted request completes, per-class stats sum
    /// to the totals, and windows never overfill.
    #[test]
    fn queue_conservation_holds(
        seed in any::<u64>(),
        rate in 200.0f64..50_000.0,
        duration in 0.002f64..0.02,
        max_batch in 1usize..32,
        queue_capacity in 1usize..64,
        timeout_us in 0.0f64..500.0,
        resident_s in 1e-6f64..1e-3,
        marginal_s in 1e-7f64..1e-4,
    ) {
        let config = ServeConfig {
            seed,
            arrival_rate_hz: rate,
            duration_s: duration,
            max_batch,
            queue_capacity,
            batch_timeout_s: timeout_us * 1e-6,
        };
        let costs = [
            (resident_s, 1e-3, marginal_s, 20e-6),
            (resident_s * 0.5, 5e-4, marginal_s * 2.0, 10e-6),
            (resident_s * 2.0, 2e-3, marginal_s * 0.5, 40e-6),
        ];
        let report = run(config, synthetic_classes(&costs));
        prop_assert_eq!(report.admitted + report.rejected, report.arrivals);
        prop_assert_eq!(report.completed, report.admitted);
        let class_admitted: u64 = report.classes.iter().map(|c| c.admitted).sum();
        let class_rejected: u64 = report.classes.iter().map(|c| c.rejected).sum();
        let class_completed: u64 = report.classes.iter().map(|c| c.completed).sum();
        prop_assert_eq!(class_admitted, report.admitted);
        prop_assert_eq!(class_rejected, report.rejected);
        prop_assert_eq!(class_completed, report.completed);
        prop_assert!(report.mean_occupancy <= max_batch as f64 + 1e-12);
        if report.completed > 0 {
            prop_assert!(report.windows > 0);
            prop_assert!(report.p99_latency_s >= report.p50_latency_s);
            prop_assert!(report.total_energy_j > 0.0);
            prop_assert!(report.makespan_s > 0.0);
        }
    }
}

/// The full accelerator-backed mix (TRON prefill + decode, GHOST GNN)
/// is as reproducible as the synthetic one: the device cost models feed
/// the engine deterministic service costs.
#[test]
fn standard_mix_is_thread_invariant() {
    let config = ServeConfig {
        arrival_rate_hz: 3_000.0,
        duration_s: 0.02,
        ..ServeConfig::default()
    };
    let build = || {
        let tron = TronAccelerator::new(TronConfig::default()).expect("tron");
        let ghost = GhostAccelerator::new(GhostConfig::default()).expect("ghost");
        standard_mix(&tron, &ghost).expect("mix")
    };
    let baseline = with_threads(1, || run(config, build()).to_json());
    for threads in [2usize, 4, 8] {
        let report = with_threads(threads, || run(config, build()).to_json());
        assert_eq!(baseline, report, "diverged at {threads} threads");
    }
    assert!(baseline.contains("prefill/BERT-base"));
}
