//! The empty-fault-schedule no-op property and fault-mode determinism.
//!
//! A fault-aware engine built over an **empty** `FaultSchedule` must be
//! indistinguishable — byte-identical report JSON *and* byte-identical
//! trace exports — from the plain engine, at every thread-pool width.
//! And a *non*-empty timeline must itself be deterministic across
//! thread counts: faults perturb the physics, never the scheduling
//! reproducibility.

use proptest::prelude::*;

use phox_arch::metrics::ServiceCost;
use phox_photonics::fault::FaultSchedule;
use phox_serve::{
    FaultContext, Hazard, HazardTimeline, ProbeConfig, RecoveryPolicy, ServeConfig, ServeEngine,
    ServiceClass, Severity,
};
use phox_tensor::parallel::with_threads;
use phox_tron::config::TronConfig;

fn synthetic_classes() -> Vec<ServiceClass> {
    vec![
        ServiceClass::new(
            "fast",
            ServiceCost {
                resident_s: 100e-6,
                resident_j: 1e-3,
                marginal_s: 10e-6,
                marginal_j: 20e-6,
                leakage_w: 0.05,
            },
            2.0,
        )
        .expect("class"),
        ServiceClass::new(
            "slow",
            ServiceCost {
                resident_s: 30e-6,
                resident_j: 4e-4,
                marginal_s: 25e-6,
                marginal_j: 5e-6,
                leakage_w: 0.05,
            },
            1.0,
        )
        .expect("class"),
    ]
}

/// Runs under an installed trace; returns (report JSON, trace JSONL).
fn traced_run(engine: &ServeEngine) -> (String, String) {
    let trace = phox_trace::Trace::new();
    let report = phox_trace::with_installed(trace.clone(), || engine.run().expect("run"));
    (report.to_json(), trace.export_jsonl())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Empty schedule ⇒ strict no-op: same report bytes and same trace
    /// bytes as the unfaulted engine, across 1/2/4/8 threads, for every
    /// recovery policy.
    #[test]
    fn empty_schedule_is_byte_identical_to_unfaulted(
        seed in any::<u64>(),
        rate in 500.0f64..10_000.0,
        duration in 0.002f64..0.01,
        policy_idx in 0usize..3,
    ) {
        let config = ServeConfig {
            seed,
            arrival_rate_hz: rate,
            duration_s: duration,
            ..ServeConfig::default()
        };
        let policy = [
            RecoveryPolicy::None,
            RecoveryPolicy::RetryBackoff { max_retries: 3, base_backoff_s: 100e-6 },
            RecoveryPolicy::Degrade {
                max_retries: 3,
                base_backoff_s: 100e-6,
                recalibration_s: 500e-6,
                fallback_slowdown: 2.0,
            },
        ][policy_idx];
        // An empty FaultSchedule resolves to an empty timeline, as the
        // serving entry point would build it.
        let cfg = TronConfig::default();
        let schedule = FaultSchedule::new(cfg.array_rows, cfg.array_channels);
        let timeline = HazardTimeline::resolve_tron(&schedule, &cfg).expect("resolve");
        prop_assert!(timeline.is_empty());

        let plain = ServeEngine::new(config, synthetic_classes()).expect("engine");
        let ctx = FaultContext::new(timeline, policy, ProbeConfig::default()).expect("ctx");
        let faulted =
            ServeEngine::with_faults(config, synthetic_classes(), ctx).expect("engine");

        let (base_report, base_trace) = with_threads(1, || traced_run(&plain));
        for threads in [1usize, 2, 4, 8] {
            let (report, trace) = with_threads(threads, || traced_run(&faulted));
            prop_assert_eq!(&base_report, &report, "report diverged at {} threads", threads);
            prop_assert_eq!(&base_trace, &trace, "trace diverged at {} threads", threads);
        }
    }

    /// A faulted run is itself thread-invariant, and its report
    /// conserves every admitted request into a terminal state.
    #[test]
    fn faulted_runs_are_thread_invariant_and_conserve(
        seed in any::<u64>(),
        rate in 500.0f64..10_000.0,
        duration in 0.004f64..0.012,
        onset_ms in 0.0f64..4.0,
        hold_ms in 0.5f64..6.0,
        policy_idx in 0usize..3,
    ) {
        let config = ServeConfig {
            seed,
            arrival_rate_hz: rate,
            duration_s: duration,
            ..ServeConfig::default()
        };
        let policy = [
            RecoveryPolicy::None,
            RecoveryPolicy::RetryBackoff { max_retries: 4, base_backoff_s: 100e-6 },
            RecoveryPolicy::Degrade {
                max_retries: 4,
                base_backoff_s: 100e-6,
                recalibration_s: 500e-6,
                fallback_slowdown: 2.0,
            },
        ][policy_idx];
        let timeline = HazardTimeline::from_hazards(vec![
            Hazard {
                onset_s: onset_ms * 1e-3,
                clear_s: (onset_ms + hold_ms) * 1e-3,
                severity: Severity::Fatal,
            },
            Hazard {
                onset_s: 0.0,
                clear_s: f64::INFINITY,
                severity: Severity::Degraded {
                    marginal_slowdown: 1.25,
                    extra_leakage_w: 0.02,
                },
            },
        ]).expect("timeline");
        let ctx = FaultContext::new(timeline, policy, ProbeConfig::default()).expect("ctx");
        let engine = ServeEngine::with_faults(config, synthetic_classes(), ctx).expect("engine");

        let (base_report, base_trace) = with_threads(1, || traced_run(&engine));
        for threads in [2usize, 4, 8] {
            let (report, trace) = with_threads(threads, || traced_run(&engine));
            prop_assert_eq!(&base_report, &report, "report diverged at {} threads", threads);
            prop_assert_eq!(&base_trace, &trace, "trace diverged at {} threads", threads);
        }

        let report = engine.run().expect("run");
        prop_assert_eq!(report.admitted + report.rejected, report.arrivals);
        prop_assert_eq!(
            report.completed + report.dropped + report.timed_out,
            report.admitted
        );
        let class_terminal: u64 = report
            .classes
            .iter()
            .map(|c| c.completed + c.dropped + c.timed_out)
            .sum();
        prop_assert_eq!(class_terminal, report.admitted);
    }
}
