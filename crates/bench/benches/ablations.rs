//! Ablation benches A1–A3: tuning policy, GHOST orchestration
//! optimizations, and the eq. (3) decomposition — plus the design-space
//! sweep (E7) that sizes both accelerators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;
use phox_core::photonics::design_space;
use phox_core::photonics::tuning::{HybridTuning, ThermalField};
use phox_core::prelude::*;

fn ablations(c: &mut Criterion) {
    println!("{}", bench::ablate_tuning().expect("A1"));
    let ghost = bench::paper_ghost().expect("paper GHOST");
    println!("{}", bench::ablate_ghost(ghost.config()).expect("A2"));
    let tron = bench::paper_tron().expect("paper TRON");
    println!("{}", bench::ablate_tron(&tron).expect("A3"));
    println!("{}", bench::design_space_table().expect("E7"));
    println!("{}", bench::summary(&tron, &ghost).expect("E8"));

    // A1: hybrid tuning plan + TED eigen-solve.
    let tuning = HybridTuning::default();
    c.bench_function("a1/hybrid_tuning_plan", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..40 {
                let shift = 0.05 * i as f64;
                if let Ok(op) = tuning.tune(black_box(shift)) {
                    acc += op.power_w;
                }
            }
            black_box(acc)
        })
    });
    let field = ThermalField::new(16, 8.0, 10.0).expect("field");
    let targets: Vec<f64> = (0..16).map(|i| 0.4 + 0.02 * i as f64).collect();
    c.bench_function("a1/ted_eigen_solve", |b| {
        b.iter(|| black_box(field.ted_power(black_box(&targets)).expect("ted")))
    });

    // A2: GHOST with and without the optimization bundle.
    let reddit = GnnWorkload::sampled(
        GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
        GraphShape::reddit(),
        25,
    );
    let none = GhostAccelerator::new(GhostConfig {
        optimizations: Optimizations::none(),
        ..ghost.config().clone()
    })
    .expect("ghost none");
    c.bench_function("a2/ghost_optimized", |b| {
        b.iter(|| black_box(ghost.simulate(black_box(&reddit)).expect("simulate")))
    });
    c.bench_function("a2/ghost_unoptimized", |b| {
        b.iter(|| black_box(none.simulate(black_box(&reddit)).expect("simulate")))
    });

    // A3: TRON end-to-end simulation (the decomposition's cost model).
    let bert = TransformerConfig::bert_base(128);
    c.bench_function("a3/tron_simulate_bert", |b| {
        b.iter(|| black_box(tron.simulate(black_box(&bert)).expect("simulate")))
    });

    // E7: the design-space sweep itself.
    c.bench_function("e7/design_space_sweep", |b| {
        b.iter(|| {
            black_box(design_space::sweep(black_box(&SweepConfig::default())).expect("sweep"))
        })
    });
}

criterion_group!(benches, ablations);
criterion_main!(benches);
