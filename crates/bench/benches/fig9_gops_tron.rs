//! E2 / Fig. 9 bench: times the full TRON-vs-baselines throughput
//! comparison per workload, and prints the regenerated series once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;
use phox_core::prelude::*;

fn fig9(c: &mut Criterion) {
    let tron = bench::paper_tron().expect("paper TRON");
    println!("{}", bench::fig9_gops_tron(&tron).expect("fig9").render());

    let mut group = c.benchmark_group("fig9_gops_tron");
    for model in bench::tron_workloads() {
        group.bench_function(model.name.clone(), |b| {
            b.iter(|| {
                let rows =
                    tron_comparison(black_box(&tron), black_box(&model)).expect("comparison");
                black_box(claims(&rows).expect("claims"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
