//! Benchmarks of the *functional* (value-level) simulators themselves —
//! how fast the analog signal-chain model executes real inference, which
//! bounds the size of accuracy experiments the repository can run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_core::nn::datasets::sbm;
use phox_core::prelude::*;

fn functional(c: &mut Criterion) {
    // TRON functional: tiny transformer forward.
    let model = TransformerModel::random(TransformerConfig::tiny(16), 1).expect("model");
    let x = Prng::new(2).fill_normal(16, 32, 0.0, 1.0);
    let mut tsim = TronFunctional::new(&TronConfig::default(), 3).expect("sim");
    c.bench_function("functional/tron_tiny_forward", |b| {
        b.iter(|| {
            black_box(
                tsim.forward(black_box(&model), black_box(&x))
                    .expect("forward"),
            )
        })
    });

    // GHOST functional: GCN over an SBM community graph.
    let task = sbm(3, 12, 16, 0.5, 0.05, 4).expect("task");
    let gnn = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 16, 32, 3), 5).expect("model");
    let mut gsim = GhostFunctional::new(&GhostConfig::default(), 6).expect("sim");
    c.bench_function("functional/ghost_gcn_forward", |b| {
        b.iter(|| {
            black_box(
                gsim.forward(black_box(&gnn), &task.graph, &task.features)
                    .expect("forward"),
            )
        })
    });

    // The raw analog matmul kernel.
    use phox_core::photonics::analog::AnalogEngine;
    let mut eng = AnalogEngine::new(2e-3, 8, 8, 7).expect("engine");
    let mut rng = Prng::new(8);
    let a = rng.fill_normal(32, 64, 0.0, 1.0);
    let bm = rng.fill_normal(64, 32, 0.0, 1.0);
    c.bench_function("functional/analog_matmul_32x64x32", |b| {
        b.iter(|| black_box(eng.matmul(black_box(&a), black_box(&bm)).expect("matmul")))
    });
}

criterion_group!(benches, functional);
criterion_main!(benches);
