//! E3 / Fig. 10 bench: times the GHOST EPB simulation per GNN workload,
//! and prints the regenerated series once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;

fn fig10(c: &mut Criterion) {
    let ghost = bench::paper_ghost().expect("paper GHOST");
    println!(
        "{}",
        bench::fig10_epb_ghost(&ghost).expect("fig10").render()
    );

    let mut group = c.benchmark_group("fig10_epb_ghost");
    for workload in bench::ghost_workloads() {
        let label = format!("{}/{}", workload.model.kind, workload.shape.name);
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = ghost.simulate(black_box(&workload)).expect("simulate");
                black_box(report.perf.epb_j())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
