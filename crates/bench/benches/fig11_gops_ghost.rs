//! E4 / Fig. 11 bench: times the full GHOST-vs-baselines throughput
//! comparison per workload, and prints the regenerated series once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;
use phox_core::prelude::*;

fn fig11(c: &mut Criterion) {
    let ghost = bench::paper_ghost().expect("paper GHOST");
    println!(
        "{}",
        bench::fig11_gops_ghost(&ghost).expect("fig11").render()
    );

    let mut group = c.benchmark_group("fig11_gops_ghost");
    for workload in bench::ghost_workloads() {
        let label = format!("{}/{}", workload.model.kind, workload.shape.name);
        group.bench_function(label, |b| {
            b.iter(|| {
                let rows =
                    ghost_comparison(black_box(&ghost), black_box(&workload)).expect("comparison");
                black_box(claims(&rows).expect("claims"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig11);
criterion_main!(benches);
