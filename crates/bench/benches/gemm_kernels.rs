//! GEMM kernel comparison (satellite of the parallel-backend PR): the
//! textbook i-j-k loop vs the cache-blocked packed-`Bᵀ` kernel vs the
//! blocked kernel with row-band parallelism, at 64 / 256 / 1024.
//!
//! `scripts/bench_snapshot.sh` runs the same kernels through the
//! `bench_snapshot` binary and records the speedups in `BENCH_1.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use phox_core::tensor::{gemm, Prng};

fn gemm_kernels(c: &mut Criterion) {
    for &n in &[64usize, 256, 1024] {
        let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
        let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
        c.bench_function(&format!("gemm_naive_{n}"), |be| {
            be.iter(|| gemm::matmul_naive(black_box(&a), black_box(&b)).unwrap())
        });
        c.bench_function(&format!("gemm_blocked_{n}"), |be| {
            be.iter(|| gemm::matmul_blocked(black_box(&a), black_box(&b)).unwrap())
        });
        c.bench_function(&format!("gemm_blocked_parallel_{n}"), |be| {
            be.iter(|| gemm::matmul(black_box(&a), black_box(&b)).unwrap())
        });
    }
}

criterion_group!(benches, gemm_kernels);
criterion_main!(benches);
