//! E5 / Fig. 3 bench: times the device-level kernels behind the MR
//! response and crosstalk curves — the transmission evaluation, the
//! parameter-imprint solve, and the bank-level crosstalk analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;
use phox_core::photonics::crosstalk::HeterodyneAnalysis;
use phox_core::prelude::*;

fn fig3(c: &mut Criterion) {
    println!("{}", bench::fig3_mr_response().expect("fig3"));
    let mr = MrConfig::default().validated().expect("valid MR");

    c.bench_function("fig3/through_transmission", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut d = -0.5;
            while d <= 0.5 {
                acc += mr.through_transmission(black_box(1550.0 + d), 1550.0);
                d += 0.01;
            }
            black_box(acc)
        })
    });

    c.bench_function("fig3/imprint_solve", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..100 {
                let target = 0.01 + 0.0098 * i as f64;
                acc += mr.detuning_for_target(black_box(target)).expect("in range");
            }
            black_box(acc)
        })
    });

    c.bench_function("fig3/heterodyne_worst_case", |b| {
        b.iter(|| {
            let a = HeterodyneAnalysis::new(&mr, black_box(8), black_box(1.6)).expect("fits FSR");
            black_box(a.worst_case())
        })
    });

    c.bench_function("fig3/max_channels_search", |b| {
        b.iter(|| black_box(HeterodyneAnalysis::max_channels(&mr, black_box(1.2), 8)))
    });
}

criterion_group!(benches, fig3);
criterion_main!(benches);
