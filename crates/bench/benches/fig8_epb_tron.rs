//! E1 / Fig. 8 bench: times the TRON EPB simulation for every
//! transformer workload of the figure, and prints the regenerated series
//! once at startup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phox_bench as bench;

fn fig8(c: &mut Criterion) {
    let tron = bench::paper_tron().expect("paper TRON");
    // Print the figure once so the bench log doubles as the artifact.
    println!("{}", bench::fig8_epb_tron(&tron).expect("fig8").render());

    let mut group = c.benchmark_group("fig8_epb_tron");
    for model in bench::tron_workloads() {
        group.bench_function(model.name.clone(), |b| {
            b.iter(|| {
                let report = tron.simulate(black_box(&model)).expect("simulate");
                black_box(report.perf.epb_j())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
