//! Regenerates the paper's tables and figures on the command line.
//!
//! ```sh
//! cargo run -p phox-bench --bin figures --release            # everything
//! cargo run -p phox-bench --bin figures --release -- fig8    # one figure
//! cargo run -p phox-bench --bin figures --release -- fig8 --json   # machine-readable
//! ```
//!
//! Targets: `fig3 fig8 fig9 fig10 fig11 quant dse summary
//! ablate-tuning ablate-ghost ablate-tron variation pcm noise bits breakdown generation coherent sweeps all`.

use phox_bench as bench;
use phox_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let target = args.first().map(String::as_str).unwrap_or("all");
    let emit = |fig: phox_bench::Figure| -> Result<String, Box<dyn std::error::Error>> {
        Ok(if json { fig.to_json() } else { fig.render() })
    };

    // Built lazily: the device-level targets don't need the simulators.
    let mut tron: Option<TronAccelerator> = None;
    let mut ghost: Option<GhostAccelerator> = None;
    let need_tron = |t: &mut Option<TronAccelerator>| -> Result<(), PhotonicError> {
        if t.is_none() {
            *t = Some(bench::paper_tron()?);
        }
        Ok(())
    };
    let need_ghost = |g: &mut Option<GhostAccelerator>| -> Result<(), PhotonicError> {
        if g.is_none() {
            *g = Some(bench::paper_ghost()?);
        }
        Ok(())
    };

    let all = target == "all";
    let mut matched = false;

    if all || target == "fig3" {
        matched = true;
        println!("{}", bench::fig3_mr_response()?);
    }
    if all || target == "fig8" {
        matched = true;
        need_tron(&mut tron)?;
        println!(
            "{}",
            emit(bench::fig8_epb_tron(tron.as_ref().expect("built"))?)?
        );
    }
    if all || target == "fig9" {
        matched = true;
        need_tron(&mut tron)?;
        println!(
            "{}",
            emit(bench::fig9_gops_tron(tron.as_ref().expect("built"))?)?
        );
    }
    if all || target == "fig10" {
        matched = true;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            emit(bench::fig10_epb_ghost(ghost.as_ref().expect("built"))?)?
        );
    }
    if all || target == "fig11" {
        matched = true;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            emit(bench::fig11_gops_ghost(ghost.as_ref().expect("built"))?)?
        );
    }
    if all || target == "quant" {
        matched = true;
        println!("{}", bench::quantization_table()?);
    }
    if all || target == "dse" {
        matched = true;
        println!("{}", bench::design_space_table()?);
    }
    if all || target == "summary" {
        matched = true;
        need_tron(&mut tron)?;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            bench::summary(
                tron.as_ref().expect("built"),
                ghost.as_ref().expect("built")
            )?
        );
    }
    if all || target == "ablate-tuning" {
        matched = true;
        println!("{}", bench::ablate_tuning()?);
    }
    if all || target == "ablate-ghost" {
        matched = true;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            bench::ablate_ghost(ghost.as_ref().expect("built").config())?
        );
    }
    if all || target == "ablate-tron" {
        matched = true;
        need_tron(&mut tron)?;
        println!("{}", bench::ablate_tron(tron.as_ref().expect("built"))?);
    }

    if all || target == "variation" {
        matched = true;
        need_tron(&mut tron)?;
        println!("{}", bench::variation_table(tron.as_ref().expect("built"))?);
    }
    if all || target == "pcm" {
        matched = true;
        println!("{}", bench::pcm_table()?);
    }
    if all || target == "noise" {
        matched = true;
        println!("{}", bench::noise_robustness_table()?);
    }
    if all || target == "bits" {
        matched = true;
        println!("{}", bench::precision_table()?);
    }
    if all || target == "breakdown" {
        matched = true;
        need_tron(&mut tron)?;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            bench::energy_breakdown(
                tron.as_ref().expect("built"),
                ghost.as_ref().expect("built")
            )?
        );
    }
    if all || target == "coherent" {
        matched = true;
        println!("{}", bench::coherent_table()?);
    }
    if all || target == "generation" {
        matched = true;
        need_tron(&mut tron)?;
        println!(
            "{}",
            bench::generation_table(tron.as_ref().expect("built"))?
        );
    }
    if all || target == "sweeps" {
        matched = true;
        need_tron(&mut tron)?;
        need_ghost(&mut ghost)?;
        println!(
            "{}",
            bench::sensitivity_sweeps(
                tron.as_ref().expect("built"),
                ghost.as_ref().expect("built")
            )?
        );
    }

    if !matched {
        eprintln!(
            "unknown target '{target}'; use one of: fig3 fig8 fig9 fig10 fig11 quant dse summary ablate-tuning ablate-ghost ablate-tron variation pcm noise bits breakdown generation coherent sweeps all"
        );
        std::process::exit(2);
    }
    Ok(())
}
