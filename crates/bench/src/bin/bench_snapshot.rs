//! Records kernel speedup snapshots as JSON.
//!
//! Two snapshots are produced:
//!
//! * **gemm** (`BENCH_1.json`): the textbook i-j-k loop, the
//!   cache-blocked packed-`Bᵀ` kernel, and the blocked kernel with
//!   row-band parallelism at 64 / 256 / 1024. The acceptance gate for the
//!   parallel backend PR is the blocked kernel reaching ≥4× over naive at
//!   1024.
//! * **sparse** (`BENCH_2.json`): CSR aggregation vs the retired per-node
//!   dense-stack path on a Cora-class R-MAT graph and a 100k-node /
//!   1M-edge synthetic power-law graph. The acceptance gate for the
//!   sparse compute-path PR is ≥5× on the Cora-class graph and a
//!   completed large-graph run.
//!
//! Usage: `bench_snapshot [gemm|sparse|all] [OUTPUT.json]` (default
//! `all`, writing `BENCH_1.json` and `BENCH_2.json`). A bare
//! `OUTPUT.json` first argument keeps the legacy behaviour of writing the
//! gemm snapshot there.

use std::time::Instant;

use phox_core::nn::datasets::{power_law, GraphShape};
use phox_core::nn::gnn::{Aggregation, CsrGraph, GnnConfig, GnnKind, GnnModel};
use phox_core::tensor::{gemm, parallel, sparse, Matrix, Prng};
use phox_core::trace::json::json_number;

/// Median-of-`reps` wall time for one evaluation of `f`, in seconds.
fn time_median<F: FnMut() -> Matrix>(reps: usize, mut f: F) -> f64 {
    // One warm-up evaluation so page faults and allocator growth are
    // excluded from every sample.
    let sink = f();
    let mut checksum = sink.get(0, 0);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            checksum += out.get(0, 0);
            dt
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    assert!(checksum.is_finite());
    samples[samples.len() / 2]
}

struct SizeReport {
    n: usize,
    naive_s: f64,
    blocked_s: f64,
    parallel_s: f64,
}

impl SizeReport {
    fn blocked_speedup(&self) -> f64 {
        self.naive_s / self.blocked_s
    }

    fn parallel_speedup(&self) -> f64 {
        self.naive_s / self.parallel_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"naive_s\": {},\n",
                "      \"blocked_s\": {},\n",
                "      \"parallel_s\": {},\n",
                "      \"blocked_speedup\": {},\n",
                "      \"parallel_speedup\": {}\n",
                "    }}"
            ),
            self.n,
            json_number(self.naive_s),
            json_number(self.blocked_s),
            json_number(self.parallel_s),
            json_number(self.blocked_speedup()),
            json_number(self.parallel_speedup()),
        )
    }
}

fn measure(n: usize, reps: usize) -> SizeReport {
    let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
    let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
    let naive_s = time_median(reps, || gemm::matmul_naive(&a, &b).unwrap());
    let blocked_s = time_median(reps, || gemm::matmul_blocked(&a, &b).unwrap());
    let parallel_s = time_median(reps, || gemm::matmul(&a, &b).unwrap());
    SizeReport {
        n,
        naive_s,
        blocked_s,
        parallel_s,
    }
}

fn write_or_die(out_path: &str, json: &str) {
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench_snapshot: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("bench_snapshot: wrote {out_path}");
}

fn run_gemm(out_path: &str) {
    let sizes_reps = [(64usize, 21usize), (256, 9), (1024, 3)];
    let mut reports = Vec::new();
    for &(n, reps) in &sizes_reps {
        eprintln!("bench_snapshot: measuring n = {n} ({reps} reps)...");
        let r = measure(n, reps);
        eprintln!(
            "bench_snapshot: n = {n}: naive {:.4}s blocked {:.4}s ({:.2}x) parallel {:.4}s ({:.2}x)",
            r.naive_s,
            r.blocked_s,
            r.blocked_speedup(),
            r.parallel_s,
            r.parallel_speedup(),
        );
        reports.push(r);
    }
    let rows: Vec<String> = reports.iter().map(SizeReport::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"gemm_kernels\",\n",
            "  \"kernels\": [\"naive_ijk\", \"blocked_packed_bt\", \"blocked_parallel\"],\n",
            "  \"threads\": {},\n",
            "  \"timing\": \"median wall seconds\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        parallel::max_threads(),
        rows.join(",\n"),
    );
    write_or_die(out_path, &json);
}

struct GraphReport {
    name: &'static str,
    nodes: usize,
    edges: usize,
    features: usize,
    dense_stack_s: f64,
    sparse_s: f64,
    spmm_s: f64,
}

impl GraphReport {
    fn speedup(&self) -> f64 {
        self.dense_stack_s / self.sparse_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"nodes\": {},\n",
                "      \"edges\": {},\n",
                "      \"features\": {},\n",
                "      \"dense_stack_s\": {},\n",
                "      \"sparse_s\": {},\n",
                "      \"spmm_s\": {},\n",
                "      \"speedup\": {}\n",
                "    }}"
            ),
            self.name,
            self.nodes,
            self.edges,
            self.features,
            json_number(self.dense_stack_s),
            json_number(self.sparse_s),
            json_number(self.spmm_s),
            json_number(self.speedup()),
        )
    }
}

fn measure_graph(
    name: &'static str,
    graph: &CsrGraph,
    features: usize,
    dense_reps: usize,
    sparse_reps: usize,
) -> GraphReport {
    // GCN's aggregation op: mean over neighbours plus the vertex itself.
    let x = Prng::new(11).fill_normal(graph.num_nodes(), features, 0.0, 1.0);
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, features, 8, 2), 12)
        .expect("valid benchmark model");
    let dense_stack_s = time_median(dense_reps, || {
        model.aggregate_dense_stack(graph, &x, Aggregation::Mean, true)
    });
    let sparse_s = time_median(sparse_reps, || {
        model.aggregate(graph, &x, Aggregation::Mean, true)
    });
    let spmm_s = time_median(sparse_reps, || {
        sparse::spmm(&graph.csr_view(), &x).expect("spmm operands agree")
    });
    GraphReport {
        name,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        features,
        dense_stack_s,
        sparse_s,
        spmm_s,
    }
}

fn run_sparse(out_path: &str) {
    eprintln!("bench_snapshot: generating Cora-class R-MAT graph...");
    let cora = GraphShape::cora()
        .instantiate(21)
        .expect("Cora-class instantiation");
    eprintln!("bench_snapshot: generating 100k-node / 1M-edge power-law graph...");
    let large = power_law(100_000, 1_000_000, 2.2, 22).expect("power-law instantiation");
    let mut reports = Vec::new();
    for (name, graph, features, dense_reps, sparse_reps) in [
        ("cora_class_rmat", &cora, 1_433usize, 5usize, 9usize),
        ("power_law_100k", &large, 64, 3, 5),
    ] {
        eprintln!("bench_snapshot: measuring {name}...");
        let r = measure_graph(name, graph, features, dense_reps, sparse_reps);
        eprintln!(
            "bench_snapshot: {name}: dense_stack {:.4}s sparse {:.4}s ({:.2}x) spmm {:.4}s",
            r.dense_stack_s,
            r.sparse_s,
            r.speedup(),
            r.spmm_s,
        );
        reports.push(r);
    }
    let rows: Vec<String> = reports.iter().map(GraphReport::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sparse_aggregation\",\n",
            "  \"kernels\": [\"dense_stack\", \"csr_aggregate\", \"csr_spmm\"],\n",
            "  \"aggregation\": \"mean_include_self\",\n",
            "  \"threads\": {},\n",
            "  \"timing\": \"median wall seconds\",\n",
            "  \"workloads\": [\n{}\n  ]\n",
            "}}\n"
        ),
        parallel::max_threads(),
        rows.join(",\n"),
    );
    write_or_die(out_path, &json);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            run_gemm("BENCH_1.json");
            run_sparse("BENCH_2.json");
        }
        Some("gemm") => run_gemm(args.get(1).map_or("BENCH_1.json", String::as_str)),
        Some("sparse") => run_sparse(args.get(1).map_or("BENCH_2.json", String::as_str)),
        // Legacy invocation: a bare output path means the gemm snapshot.
        Some(path) => run_gemm(path),
    }
}
