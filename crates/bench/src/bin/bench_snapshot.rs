//! Records kernel speedup snapshots as JSON.
//!
//! Six snapshots are produced:
//!
//! * **gemm** (`BENCH_1.json`): the textbook i-j-k loop, the
//!   cache-blocked packed-`Bᵀ` kernel, and the blocked kernel with
//!   row-band parallelism at 64 / 256 / 1024. The acceptance gate for the
//!   parallel backend PR is the blocked kernel reaching ≥4× over naive at
//!   1024.
//! * **sparse** (`BENCH_2.json`): CSR aggregation vs the retired per-node
//!   dense-stack path on a Cora-class R-MAT graph and a 100k-node /
//!   1M-edge synthetic power-law graph. The acceptance gate for the
//!   sparse compute-path PR is ≥5× on the Cora-class graph and a
//!   completed large-graph run.
//! * **int8** (`BENCH_3.json`): the true int8 GEMM and SpMM kernels
//!   (`i8 x i8 -> i32`) against their f64 counterparts, plus a
//!   1/2/4/8-thread scaling sweep. Every int8 measurement is checked
//!   against the naive i32 oracle and for bit-identity across thread
//!   counts; the verdicts are recorded in the snapshot.
//! * **decode** (`BENCH_4.json`): KV-cached autoregressive decode —
//!   per-token latency of a cached decode step vs a full-sequence
//!   recompute, f64 and int8, across context lengths and a 1/2/4/8
//!   thread sweep. Every cached step is checked against the
//!   full-forward oracle (≤1e-9 relative f64, exact int8) and the
//!   growth verdicts (cached sub-quadratic, full recompute
//!   super-linear) are recorded in the snapshot.
//! * **serve** (`BENCH_5.json`): the batched-inference serving
//!   simulator under a sweep of offered arrival rates — p50/p99
//!   latency, sustained QPS, mean batch occupancy and joules/request
//!   for the standard prefill + decode + GNN mix, with every report
//!   checked byte-identical across 1/2/4/8-thread pools. The verdicts
//!   section records that joules/request falls as batch occupancy
//!   rises (weight residency amortised) and that every rate was
//!   thread-invariant.
//! * **faults** (`BENCH_6.json`): the accuracy-under-physics study.
//!   Section one sweeps a ladder of device-fault budgets (stuck MRs,
//!   dead ADC lanes, thermal drift) through the TRON and GHOST
//!   functional simulators and scores each faulted output against the
//!   f64 oracle — the accuracy cliff — with uncompensatable budgets
//!   recorded as typed error strings. Section two runs the serving
//!   engine under seeded random fault timelines at increasing fault
//!   arrival rates, once per recovery policy (none / retry+backoff /
//!   degrade), reporting availability, p99 latency and joules/request,
//!   plus the empty-schedule no-op and thread-identity verdicts.
//!
//! A seventh mode, **digest** (`BENCH_DIGEST.json`, not part of `all`),
//! emits no timings at all: it runs a fixed deterministic battery
//! through every SIMD-touched layer and writes result-bit digests, so
//! CI can run it under both dispatch modes (`PHOX_FORCE_SCALAR=1` vs
//! AVX2) and byte-diff the outputs.
//!
//! The gemm and sparse modes additionally measure the dispatched kernel
//! against a forced-scalar blocked reference and record
//! `simd_speedup` / `simd_bit_identical` verdicts in-run; a bit-identity
//! failure (or, for gemm with SIMD active, a regression below the
//! scalar kernel) exits non-zero after writing the snapshot.
//!
//! Usage: `bench_snapshot [gemm|sparse|int8|decode|serve|faults|digest|all]
//! [OUTPUT.json]`
//! (default `all`, writing `BENCH_1.json` … `BENCH_6.json`). A bare
//! `OUTPUT.json` first argument keeps the legacy behaviour of writing
//! the gemm snapshot there.

use std::time::Instant;

use phox_core::nn::datasets::{power_law, GraphShape};
use phox_core::nn::decode::KvCache;
use phox_core::nn::gnn::{Aggregation, CsrGraph, GnnConfig, GnnKind, GnnModel};
use phox_core::nn::transformer::{
    FfActivation, TransformerConfig, TransformerKind, TransformerModel,
};
use phox_core::tensor::{gemm, gemm_i8, parallel, sparse, sparse_i8, Matrix, Prng, Quantizer};
use phox_core::trace::json::json_number;

/// Median-of-`reps` wall time for one evaluation of `f`, in seconds;
/// `checksum` folds each result into a finiteness sink so the optimizer
/// cannot discard the computation.
fn time_median_by<R>(reps: usize, mut f: impl FnMut() -> R, checksum: impl Fn(&R) -> f64) -> f64 {
    // One warm-up evaluation so page faults and allocator growth are
    // excluded from every sample.
    let sink = f();
    let mut acc = checksum(&sink);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            acc += checksum(&out);
            dt
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    assert!(acc.is_finite());
    samples[samples.len() / 2]
}

/// [`time_median_by`] for the common dense-matrix case.
fn time_median<F: FnMut() -> Matrix>(reps: usize, f: F) -> f64 {
    time_median_by(reps, f, |m| m.get(0, 0))
}

/// Paired medians with interleaved sampling: one evaluation of `f`,
/// then one of `g`, per rep. Slow drift in machine conditions
/// (frequency ramps, transparent-huge-page promotion, co-tenant load)
/// then lands on both kernels instead of biasing whichever block was
/// timed last — the SIMD-vs-scalar ratio verdicts divide these two
/// numbers, so they must be sampled as a pair.
fn time_median_pair<R>(
    reps: usize,
    mut f: impl FnMut() -> R,
    mut g: impl FnMut() -> R,
    checksum: impl Fn(&R) -> f64,
) -> (f64, f64) {
    let mut acc = checksum(&f()) + checksum(&g());
    let mut fs: Vec<f64> = Vec::with_capacity(reps);
    let mut gs: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        fs.push(t0.elapsed().as_secs_f64());
        acc += checksum(&out);
        let t0 = Instant::now();
        let out = g();
        gs.push(t0.elapsed().as_secs_f64());
        acc += checksum(&out);
    }
    assert!(acc.is_finite());
    fs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    gs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (fs[reps / 2], gs[reps / 2])
}

/// Shared snapshot envelope. Every snapshot carries the same
/// `benchmark` / `kernels` / `threads` / `timing` header (previously
/// copy-pasted per snapshot); `extras` holds snapshot-specific header
/// fields (values must already be JSON-encoded) and `key`/`rows` the
/// payload array.
fn snapshot_json(
    benchmark: &str,
    kernels: &[&str],
    extras: &[(&str, String)],
    key: &str,
    rows: &[String],
) -> String {
    let kernel_list: Vec<String> = kernels.iter().map(|k| format!("\"{k}\"")).collect();
    let mut json = format!(
        "{{\n  \"benchmark\": \"{benchmark}\",\n  \"kernels\": [{}],\n",
        kernel_list.join(", "),
    );
    for (k, v) in extras {
        json.push_str(&format!("  \"{k}\": {v},\n"));
    }
    json.push_str(&format!(
        "  \"threads\": {},\n  \"timing\": \"median wall seconds\",\n  \"{key}\": [\n{}\n  ]\n}}\n",
        parallel::max_threads(),
        rows.join(",\n"),
    ));
    json
}

/// The blocked GEMM with the kernel pinned to the public scalar
/// reference dot: same `Bᵀ` packing, same 16-lane accumulation order,
/// no SIMD — the in-run baseline for the simd ratio and bit-identity
/// verdicts (the production kernel must match it bit for bit).
fn matmul_blocked_scalar(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let bt = gemm::transpose_blocked(b);
    let btv = bt.as_slice();
    let av = a.as_slice();
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = out.row_mut(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = gemm::simd::dot_scalar(arow, &btv[j * k..(j + 1) * k]);
        }
    }
    out
}

/// SpMM with the accumulation pinned to the scalar axpy reference:
/// same CSR member order and same per-row clear as
/// [`sparse::spmm_into`], no SIMD. Writes into a caller-owned buffer
/// so the timed pair compares kernels, not allocators.
fn spmm_scalar_into(a: &sparse::CsrView<'_>, x: &Matrix, out: &mut Matrix) {
    for r in 0..a.rows() {
        let slot = out.row_mut(r);
        slot.fill(0.0);
        match a.row_values(r) {
            Some(vals) => {
                for (&u, &w) in a.row_indices(r).iter().zip(vals) {
                    gemm::simd::axpy_scalar(slot, w, x.row(u as usize));
                }
            }
            None => {
                for &u in a.row_indices(r) {
                    gemm::simd::axpy_unit_scalar(slot, x.row(u as usize));
                }
            }
        }
    }
}

struct SizeReport {
    n: usize,
    naive_s: f64,
    scalar_s: f64,
    blocked_s: f64,
    parallel_s: f64,
    simd_bit_identical: bool,
}

impl SizeReport {
    fn blocked_speedup(&self) -> f64 {
        self.naive_s / self.blocked_s
    }

    fn parallel_speedup(&self) -> f64 {
        self.naive_s / self.parallel_s
    }

    /// Dispatched (SIMD when available) blocked kernel vs the
    /// forced-scalar blocked reference.
    fn simd_speedup(&self) -> f64 {
        self.scalar_s / self.blocked_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"naive_s\": {},\n",
                "      \"scalar_blocked_s\": {},\n",
                "      \"blocked_s\": {},\n",
                "      \"parallel_s\": {},\n",
                "      \"blocked_speedup\": {},\n",
                "      \"parallel_speedup\": {},\n",
                "      \"simd_speedup\": {},\n",
                "      \"simd_bit_identical\": {}\n",
                "    }}"
            ),
            self.n,
            json_number(self.naive_s),
            json_number(self.scalar_s),
            json_number(self.blocked_s),
            json_number(self.parallel_s),
            json_number(self.blocked_speedup()),
            json_number(self.parallel_speedup()),
            json_number(self.simd_speedup()),
            self.simd_bit_identical,
        )
    }
}

fn measure(n: usize, reps: usize) -> SizeReport {
    let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
    let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
    let naive_s = time_median(reps, || gemm::matmul_naive(&a, &b).unwrap());
    let (blocked_s, scalar_s) = time_median_pair(
        reps,
        || gemm::matmul_blocked(&a, &b).unwrap(),
        || matmul_blocked_scalar(&a, &b),
        |m| m.get(0, 0),
    );
    let parallel_s = time_median(reps, || gemm::matmul(&a, &b).unwrap());
    let simd_bit_identical = gemm::matmul_blocked(&a, &b).unwrap() == matmul_blocked_scalar(&a, &b);
    SizeReport {
        n,
        naive_s,
        scalar_s,
        blocked_s,
        parallel_s,
        simd_bit_identical,
    }
}

fn write_or_die(out_path: &str, json: &str) {
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench_snapshot: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("bench_snapshot: wrote {out_path}");
}

fn run_gemm(out_path: &str) {
    let simd_active = gemm::simd::simd_active();
    let sizes_reps = [(64usize, 21usize), (256, 9), (1024, 3)];
    let mut reports = Vec::new();
    for &(n, reps) in &sizes_reps {
        eprintln!("bench_snapshot: measuring n = {n} ({reps} reps)...");
        let r = measure(n, reps);
        eprintln!(
            "bench_snapshot: n = {n}: naive {:.4}s scalar {:.4}s blocked {:.4}s ({:.2}x naive, {:.2}x scalar) parallel {:.4}s ({:.2}x) bit_identical={}",
            r.naive_s,
            r.scalar_s,
            r.blocked_s,
            r.blocked_speedup(),
            r.simd_speedup(),
            r.parallel_s,
            r.parallel_speedup(),
            r.simd_bit_identical,
        );
        reports.push(r);
    }
    // In-run verdicts: the dispatched kernel must agree with the scalar
    // reference bit for bit, and when the SIMD path is active it must
    // never regress below the scalar blocked kernel.
    let bit_identical = reports.iter().all(|r| r.simd_bit_identical);
    let no_simd_regression = !simd_active || reports.iter().all(|r| r.simd_speedup() >= 1.0);
    eprintln!(
        "bench_snapshot: gemm verdicts: simd_active={simd_active} \
         simd_bit_identical={bit_identical} no_simd_regression={no_simd_regression}"
    );
    let rows: Vec<String> = reports.iter().map(SizeReport::to_json).collect();
    let json = snapshot_json(
        "gemm_kernels",
        &[
            "naive_ijk",
            "scalar_blocked_packed_bt",
            "blocked_packed_bt",
            "blocked_parallel",
        ],
        &[
            ("simd_active", simd_active.to_string()),
            ("simd_bit_identical", bit_identical.to_string()),
            ("no_simd_regression", no_simd_regression.to_string()),
        ],
        "sizes",
        &rows,
    );
    write_or_die(out_path, &json);
    if !bit_identical || !no_simd_regression {
        eprintln!("bench_snapshot: gemm simd verdicts FAILED");
        std::process::exit(1);
    }
}

struct GraphReport {
    name: &'static str,
    nodes: usize,
    edges: usize,
    features: usize,
    dense_stack_s: f64,
    sparse_s: f64,
    spmm_s: f64,
    spmm_scalar_s: f64,
    simd_bit_identical: bool,
}

impl GraphReport {
    fn speedup(&self) -> f64 {
        self.dense_stack_s / self.sparse_s
    }

    /// Dispatched (SIMD when available) SpMM vs the forced-scalar
    /// accumulation reference.
    fn simd_speedup(&self) -> f64 {
        self.spmm_scalar_s / self.spmm_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"nodes\": {},\n",
                "      \"edges\": {},\n",
                "      \"features\": {},\n",
                "      \"dense_stack_s\": {},\n",
                "      \"sparse_s\": {},\n",
                "      \"spmm_s\": {},\n",
                "      \"spmm_scalar_s\": {},\n",
                "      \"speedup\": {},\n",
                "      \"simd_speedup\": {},\n",
                "      \"simd_bit_identical\": {}\n",
                "    }}"
            ),
            self.name,
            self.nodes,
            self.edges,
            self.features,
            json_number(self.dense_stack_s),
            json_number(self.sparse_s),
            json_number(self.spmm_s),
            json_number(self.spmm_scalar_s),
            json_number(self.speedup()),
            json_number(self.simd_speedup()),
            self.simd_bit_identical,
        )
    }
}

fn measure_graph(
    name: &'static str,
    graph: &CsrGraph,
    features: usize,
    dense_reps: usize,
    sparse_reps: usize,
) -> GraphReport {
    // GCN's aggregation op: mean over neighbours plus the vertex itself.
    let x = Prng::new(11).fill_normal(graph.num_nodes(), features, 0.0, 1.0);
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, features, 8, 2), 12)
        .expect("valid benchmark model");
    let dense_stack_s = time_median(dense_reps, || {
        model.aggregate_dense_stack(graph, &x, Aggregation::Mean, true)
    });
    let sparse_s = time_median(sparse_reps, || {
        model.aggregate(graph, &x, Aggregation::Mean, true)
    });
    let mut spmm_out = Matrix::zeros(graph.num_nodes(), features);
    let mut scalar_out = Matrix::zeros(graph.num_nodes(), features);
    let (spmm_s, spmm_scalar_s) = {
        let view = graph.csr_view();
        time_median_pair(
            sparse_reps,
            || {
                sparse::spmm_into(&view, &x, &mut spmm_out).expect("spmm operands agree");
                spmm_out.get(0, 0)
            },
            || {
                spmm_scalar_into(&view, &x, &mut scalar_out);
                scalar_out.get(0, 0)
            },
            |v| *v,
        )
    };
    let simd_bit_identical = spmm_out == scalar_out;
    GraphReport {
        name,
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        features,
        dense_stack_s,
        sparse_s,
        spmm_s,
        spmm_scalar_s,
        simd_bit_identical,
    }
}

fn run_sparse(out_path: &str) {
    eprintln!("bench_snapshot: generating Cora-class R-MAT graph...");
    let cora = GraphShape::cora()
        .instantiate(21)
        .expect("Cora-class instantiation");
    eprintln!("bench_snapshot: generating 100k-node / 1M-edge power-law graph...");
    let large = power_law(100_000, 1_000_000, 2.2, 22).expect("power-law instantiation");
    let mut reports = Vec::new();
    for (name, graph, features, dense_reps, sparse_reps) in [
        ("cora_class_rmat", &cora, 1_433usize, 5usize, 9usize),
        ("power_law_100k", &large, 64, 3, 5),
    ] {
        eprintln!("bench_snapshot: measuring {name}...");
        let r = measure_graph(name, graph, features, dense_reps, sparse_reps);
        eprintln!(
            "bench_snapshot: {name}: dense_stack {:.4}s sparse {:.4}s ({:.2}x) spmm {:.4}s scalar {:.4}s ({:.2}x) bit_identical={}",
            r.dense_stack_s,
            r.sparse_s,
            r.speedup(),
            r.spmm_s,
            r.spmm_scalar_s,
            r.simd_speedup(),
            r.simd_bit_identical,
        );
        reports.push(r);
    }
    let simd_active = gemm::simd::simd_active();
    let bit_identical = reports.iter().all(|r| r.simd_bit_identical);
    // SpMM is DRAM-bandwidth-bound, so the dispatched axpy is expected
    // at *parity* with the scalar loop, not at the GEMM kernel's
    // vector-width speedup — per-workload ratios swing with memory
    // noise. The verdict therefore guards against gross kernel
    // regressions only: geometric mean across workloads ≥ 0.9.
    let geomean =
        (reports.iter().map(|r| r.simd_speedup().ln()).sum::<f64>() / reports.len() as f64).exp();
    let no_simd_regression = !simd_active || geomean >= 0.9;
    eprintln!(
        "bench_snapshot: sparse verdicts: simd_active={simd_active} \
         simd_bit_identical={bit_identical} simd_geomean={geomean:.2} \
         no_simd_regression={no_simd_regression}"
    );
    let rows: Vec<String> = reports.iter().map(GraphReport::to_json).collect();
    let json = snapshot_json(
        "sparse_aggregation",
        &[
            "dense_stack",
            "csr_aggregate",
            "csr_spmm",
            "csr_spmm_scalar",
        ],
        &[
            ("aggregation", "\"mean_include_self\"".to_string()),
            ("simd_active", simd_active.to_string()),
            ("simd_bit_identical", bit_identical.to_string()),
            ("no_simd_regression", no_simd_regression.to_string()),
        ],
        "workloads",
        &rows,
    );
    write_or_die(out_path, &json);
    if !bit_identical {
        eprintln!("bench_snapshot: sparse simd verdicts FAILED");
        std::process::exit(1);
    }
}

/// Folds an i32 buffer into a checksum for [`time_median_by`].
fn i32_checksum(v: &[i32]) -> f64 {
    v.first().copied().unwrap_or(0) as f64
}

fn run_int8(out_path: &str) {
    // --- Section 1: dense GEMM, f64 blocked vs int8 blocked, single
    // thread (the per-core kernel comparison; scaling comes below).
    let mut gemm_rows = Vec::new();
    for &(n, reps) in &[(64usize, 21usize), (256, 9), (1024, 3)] {
        eprintln!("bench_snapshot: int8 gemm n = {n} ({reps} reps)...");
        let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
        let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
        let qa = Quantizer::calibrate(&a).quantize(&a);
        let qb = Quantizer::calibrate(&b).quantize(&b);
        let (f64_s, int8_s, int8_out) = parallel::with_threads(1, || {
            let f64_s = time_median(reps, || gemm::matmul_blocked(&a, &b).unwrap());
            let int8_s = time_median_by(
                reps,
                || qa.matmul_i32(&qb).unwrap(),
                |m| i32_checksum(m.as_i32_slice()),
            );
            (f64_s, int8_s, qa.matmul_i32(&qb).unwrap())
        });
        let oracle = gemm_i8::matmul_i32_naive(qa.as_i8_slice(), qb.as_i8_slice(), n, n, n)
            .expect("oracle operands agree");
        let matches_oracle = int8_out.as_i32_slice() == oracle.as_slice();
        let speedup = f64_s / int8_s;
        eprintln!(
            "bench_snapshot: n = {n}: f64_blocked {f64_s:.4}s int8 {int8_s:.4}s ({speedup:.2}x) oracle_ok={matches_oracle}"
        );
        gemm_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"n\": {},\n",
                "          \"f64_blocked_s\": {},\n",
                "          \"int8_s\": {},\n",
                "          \"int8_speedup\": {},\n",
                "          \"matches_naive_oracle\": {}\n",
                "        }}"
            ),
            n,
            json_number(f64_s),
            json_number(int8_s),
            json_number(speedup),
            matches_oracle,
        ));
    }

    // --- Section 2: sparse SpMM, f64 vs int8, on the BENCH_2 workloads.
    eprintln!("bench_snapshot: generating Cora-class R-MAT graph...");
    let cora = GraphShape::cora()
        .instantiate(21)
        .expect("Cora-class instantiation");
    eprintln!("bench_snapshot: generating 100k-node / 1M-edge power-law graph...");
    let large = power_law(100_000, 1_000_000, 2.2, 22).expect("power-law instantiation");
    let mut spmm_rows = Vec::new();
    for (name, graph, features, reps) in [
        ("cora_class_rmat", &cora, 256usize, 9usize),
        ("power_law_100k", &large, 64, 5),
    ] {
        eprintln!("bench_snapshot: int8 spmm {name}...");
        let x = Prng::new(11).fill_normal(graph.num_nodes(), features, 0.0, 1.0);
        let qx = Quantizer::calibrate(&x).quantize(&x);
        let view = graph.csr_i8_view();
        let f64_s = time_median(reps, || {
            sparse::spmm(&graph.csr_view(), &x).expect("spmm operands agree")
        });
        let int8_s = time_median_by(
            reps,
            || sparse_i8::spmm_i8(&view, qx.as_i8_slice(), features).expect("spmm operands agree"),
            |v| i32_checksum(v),
        );
        let speedup = f64_s / int8_s;
        eprintln!(
            "bench_snapshot: {name}: f64_spmm {f64_s:.4}s int8_spmm {int8_s:.4}s ({speedup:.2}x)"
        );
        spmm_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"name\": \"{}\",\n",
                "          \"nodes\": {},\n",
                "          \"edges\": {},\n",
                "          \"features\": {},\n",
                "          \"f64_spmm_s\": {},\n",
                "          \"int8_spmm_s\": {},\n",
                "          \"int8_speedup\": {}\n",
                "        }}"
            ),
            name,
            graph.num_nodes(),
            graph.num_edges(),
            features,
            json_number(f64_s),
            json_number(int8_s),
            json_number(speedup),
        ));
    }

    // --- Section 3: thread scaling sweep on the int8 kernels (gemm-1024
    // and power-law SpMM), with byte-identity checked against the
    // 1-thread result: i32 sums are exact, so any difference is a bug.
    let n = 1024usize;
    let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
    let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
    let qa = Quantizer::calibrate(&a).quantize(&a);
    let qb = Quantizer::calibrate(&b).quantize(&b);
    let x = Prng::new(11).fill_normal(large.num_nodes(), 64, 0.0, 1.0);
    let qx = Quantizer::calibrate(&x).quantize(&x);
    let view = large.csr_i8_view();
    let baseline = parallel::with_threads(1, || {
        (
            qa.matmul_i32(&qb).unwrap(),
            sparse_i8::spmm_i8(&view, qx.as_i8_slice(), 64).expect("spmm operands agree"),
        )
    });
    let mut sweep_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        eprintln!("bench_snapshot: int8 thread sweep, {threads} thread(s)...");
        let (gemm_s, spmm_s, identical) = parallel::with_threads(threads, || {
            let gemm_s = time_median_by(
                3,
                || qa.matmul_i32(&qb).unwrap(),
                |m| i32_checksum(m.as_i32_slice()),
            );
            let spmm_s = time_median_by(
                5,
                || sparse_i8::spmm_i8(&view, qx.as_i8_slice(), 64).expect("spmm operands agree"),
                |v| i32_checksum(v),
            );
            let g = qa.matmul_i32(&qb).unwrap();
            let s = sparse_i8::spmm_i8(&view, qx.as_i8_slice(), 64).expect("spmm operands agree");
            (gemm_s, spmm_s, g == baseline.0 && s == baseline.1)
        });
        eprintln!(
            "bench_snapshot: {threads} thread(s): gemm_1024 {gemm_s:.4}s spmm_power_law {spmm_s:.4}s bit_identical={identical}"
        );
        sweep_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"threads\": {},\n",
                "          \"gemm_1024_s\": {},\n",
                "          \"spmm_power_law_s\": {},\n",
                "          \"bit_identical_to_single_thread\": {}\n",
                "        }}"
            ),
            threads,
            json_number(gemm_s),
            json_number(spmm_s),
            identical,
        ));
    }

    let sections = [
        ("gemm_f64_vs_int8", "sizes", gemm_rows),
        ("spmm_f64_vs_int8", "workloads", spmm_rows),
        ("int8_thread_scaling", "sweep", sweep_rows),
    ]
    .map(|(section, key, rows)| {
        format!(
            "    {{\n      \"section\": \"{section}\",\n      \"{key}\": [\n{}\n      ]\n    }}",
            rows.join(",\n"),
        )
    });
    let json = snapshot_json(
        "int8_kernels",
        &["f64_blocked", "int8_blocked", "f64_spmm", "int8_spmm"],
        &[("accumulation", "\"exact i32\"".to_string())],
        "sections",
        &sections,
    );
    write_or_die(out_path, &json);
}

/// FNV-1a over a stream of f64 bit patterns — the result digest for the
/// dispatch-identity snapshot.
fn fnv1a(bits: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn digest_matrix(m: &Matrix) -> u64 {
    fnv1a(m.as_slice().iter().map(|v| v.to_bits()))
}

/// The `digest` mode: a fixed battery of deterministic computations
/// through every SIMD-touched layer — blocked/parallel GEMM, the
/// sequence/decode GEMV path, SpMM and GNN aggregation, the analog int8
/// engine (ideal and noisy), and full Tron/Ghost functional forwards —
/// reduced to result-bit digests. No timings, no thread counts, no
/// environment: the output bytes depend only on the computed values, so
/// CI runs this twice (`PHOX_FORCE_SCALAR=1` vs the AVX2 dispatch) and
/// byte-diffs the two files to enforce the bit-identity policy
/// end-to-end.
fn run_digest(out_path: &str) {
    use phox_core::ghost::{GhostConfig, GhostFunctional};
    use phox_core::nn::datasets::sbm;
    use phox_core::photonics::analog::AnalogEngine;
    use phox_core::tensor::ops;
    use phox_core::tron::{TronConfig, TronFunctional};

    let mut rows = Vec::new();
    let mut record = |name: &str, digest: u64| {
        eprintln!("bench_snapshot: digest {name} = {digest:016x}");
        rows.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"digest\": \"{digest:016x}\"\n    }}"
        ));
    };

    // Dense GEMM over ragged shapes (edge tiles, k = 1, GEMV-shaped),
    // serial blocked and 4-thread banded.
    let shapes = [
        (33usize, 1usize, 17usize),
        (7, 96, 5),
        (64, 64, 64),
        (96, 33, 65),
        (1, 128, 3),
    ];
    let mut blocked = 0u64;
    let mut banded = 0u64;
    let mut seq = 0u64;
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let a = Prng::new(100 + i as u64).fill_uniform(m, k, -1.0, 1.0);
        let b = Prng::new(200 + i as u64).fill_uniform(k, n, -1.0, 1.0);
        blocked ^= digest_matrix(&gemm::matmul_blocked(&a, &b).expect("shapes agree"));
        banded ^= parallel::with_threads(4, || {
            digest_matrix(&gemm::matmul(&a, &b).expect("shapes agree"))
        });
        seq ^= digest_matrix(&ops::matmul_seq(&a, &b).expect("shapes agree"));
    }
    record("gemm_blocked", blocked);
    record("gemm_parallel_4t", banded);
    record("matmul_seq", seq);

    // Sparse: SpMM and mean aggregation on a small power-law graph.
    let graph = power_law(2_000, 10_000, 2.2, 33).expect("power-law instantiation");
    let x = Prng::new(34).fill_normal(graph.num_nodes(), 48, 0.0, 1.0);
    record(
        "spmm",
        digest_matrix(&sparse::spmm(&graph.csr_view(), &x).expect("spmm operands agree")),
    );
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 48, 8, 2), 35)
        .expect("valid digest model");
    record(
        "gcn_aggregate",
        digest_matrix(&model.aggregate(&graph, &x, Aggregation::Mean, true)),
    );

    // The analog int8 engine, ideal and noisy, ragged tiles.
    let a = Prng::new(36).fill_normal(70, 40, 0.0, 1.0);
    let b = Prng::new(37).fill_normal(40, 36, 0.0, 1.0);
    let mut ideal = AnalogEngine::ideal(8, 8, 38);
    record(
        "analog_matmul_ideal",
        digest_matrix(&ideal.matmul(&a, &b).expect("shapes agree")),
    );
    let mut noisy = AnalogEngine::new(5e-3, 8, 8, 39).expect("valid engine");
    record(
        "analog_matmul_noisy",
        digest_matrix(&noisy.matmul(&a, &b).expect("shapes agree")),
    );

    // Full functional forwards: transformer and GNN (GCN + GAT).
    let tf_model =
        TransformerModel::random(TransformerConfig::tiny(8), 40).expect("valid digest model");
    let tf_x = Prng::new(41).fill_normal(8, 32, 0.0, 1.0);
    let mut tron = TronFunctional::new(&TronConfig::default(), 42).expect("valid simulator");
    record(
        "tron_forward",
        digest_matrix(&tron.forward(&tf_model, &tf_x).expect("forward succeeds")),
    );
    let task = sbm(3, 8, 12, 0.5, 0.05, 43).expect("graph task");
    for (name, kind) in [
        ("ghost_forward_gcn", GnnKind::Gcn),
        ("ghost_forward_gat", GnnKind::Gat),
    ] {
        let gnn = GnnModel::random(GnnConfig::two_layer(kind, 12, 16, 3), 44)
            .expect("valid digest model");
        let mut ghost = GhostFunctional::new(&GhostConfig::default(), 45).expect("valid simulator");
        record(
            name,
            digest_matrix(
                &ghost
                    .forward(&gnn, &task.graph, &task.features)
                    .expect("forward succeeds"),
            ),
        );
    }

    // Deliberately NOT snapshot_json: that envelope embeds the machine's
    // thread count, which would defeat a cross-configuration byte-diff.
    let json = format!(
        "{{\n  \"benchmark\": \"simd_dispatch_digest\",\n  \"digests\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    write_or_die(out_path, &json);
}

/// Maximum relative elementwise difference between two equally shaped
/// row slices (the decode-oracle error metric).
fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-300))
        .fold(0.0, f64::max)
}

/// Advances `cache` with decode steps over rows `cache.rows()..rows` of
/// `x` using `step`, leaving the cache holding exactly `rows` rows.
fn prime_cache(
    cache: &mut KvCache,
    x: &Matrix,
    rows: usize,
    mut step: impl FnMut(&mut KvCache, &Matrix) -> Matrix,
) {
    for r in cache.rows()..rows {
        let row = Matrix::row_vector(x.row(r));
        step(cache, &row);
    }
}

fn run_decode(out_path: &str) {
    // A small decoder-only model: d_model deliberately modest so the
    // O(t^2 d) attention term overtakes the O(t d^2) projections inside
    // the measured context range and the quadratic/sub-quadratic growth
    // split is visible in the numbers.
    let cfg = TransformerConfig {
        name: "decode-bench".to_string(),
        kind: TransformerKind::DecoderOnly,
        layers: 4,
        d_model: 64,
        heads: 4,
        d_ff: 256,
        seq_len: 64,
        ff_activation: FfActivation::Gelu,
    };
    let d = cfg.d_model;
    let model = TransformerModel::random(cfg.clone(), 31).expect("valid benchmark model");
    let decoder = model.int8_decoder();
    let contexts = [64usize, 128, 256, 512, 1024];
    let full_reps = [9usize, 7, 5, 3, 3];
    let t_max = *contexts.last().unwrap();
    let x = Prng::new(32).fill_normal(t_max, d, 0.0, 1.0);

    // --- Section 1: per-token latency, cached step vs full-sequence
    // recompute, both engines, across context lengths. The caches grow
    // incrementally across the sweep; each timed rep appends one row and
    // truncates it back off, so the timed context stays fixed.
    let mut f64_cache = KvCache::new(&cfg, t_max).expect("cache fits the sweep");
    let mut int8_cache = KvCache::new(&cfg, t_max).expect("cache fits the sweep");
    let mut latency_rows = Vec::new();
    let mut cached_f64 = Vec::new();
    let mut full_f64 = Vec::new();
    for (&t, &reps) in contexts.iter().zip(&full_reps) {
        eprintln!("bench_snapshot: decode context {t} ({reps} full reps)...");
        prime_cache(&mut f64_cache, &x, t - 1, |c, r| {
            model.decode_step(c, r).expect("decode step")
        });
        prime_cache(&mut int8_cache, &x, t - 1, |c, r| {
            decoder.step(c, r).expect("decode step")
        });
        let row = Matrix::row_vector(x.row(t - 1));
        let prefix = Matrix::from_vec(t, d, x.as_slice()[..t * d].to_vec()).unwrap();
        let cached_f64_s = time_median(21, || {
            let y = model
                .decode_step(&mut f64_cache, &row)
                .expect("decode step");
            f64_cache.truncate(t - 1);
            y
        });
        let cached_int8_s = time_median(21, || {
            let y = decoder.step(&mut int8_cache, &row).expect("decode step");
            int8_cache.truncate(t - 1);
            y
        });
        let full_f64_s = time_median(reps, || {
            model.forward_prefix(&prefix).expect("full forward")
        });
        let full_int8_s = time_median(reps, || {
            model.forward_prefix_int8(&prefix).expect("full forward")
        });
        // Oracle: the cached step at context t must reproduce the last
        // row of the full causal forward over the same prefix.
        let y_f64 = model
            .decode_step(&mut f64_cache, &row)
            .expect("decode step");
        f64_cache.truncate(t - 1);
        let y_int8 = decoder.step(&mut int8_cache, &row).expect("decode step");
        int8_cache.truncate(t - 1);
        let full = model.forward_prefix(&prefix).expect("full forward");
        let full_i8 = model.forward_prefix_int8(&prefix).expect("full forward");
        let f64_err = max_rel_err(y_f64.row(0), full.row(t - 1));
        let f64_ok = f64_err <= 1e-9;
        let int8_ok = y_int8.row(0) == full_i8.row(t - 1);
        eprintln!(
            "bench_snapshot: t = {t}: cached_f64 {cached_f64_s:.6}s full_f64 {full_f64_s:.4}s \
             cached_int8 {cached_int8_s:.6}s full_int8 {full_int8_s:.4}s \
             f64_ok={f64_ok} (rel {f64_err:.2e}) int8_ok={int8_ok}"
        );
        cached_f64.push(cached_f64_s);
        full_f64.push(full_f64_s);
        latency_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"context\": {},\n",
                "          \"cached_f64_s\": {},\n",
                "          \"full_f64_s\": {},\n",
                "          \"cached_int8_s\": {},\n",
                "          \"full_int8_s\": {},\n",
                "          \"full_over_cached_f64\": {},\n",
                "          \"f64_matches_full_forward\": {},\n",
                "          \"int8_matches_full_forward\": {}\n",
                "        }}"
            ),
            t,
            json_number(cached_f64_s),
            json_number(full_f64_s),
            json_number(cached_int8_s),
            json_number(full_int8_s),
            json_number(full_f64_s / cached_f64_s),
            f64_ok,
            int8_ok,
        ));
    }

    // --- Section 2: growth verdicts. Over the 16x context sweep the
    // cached per-token cost is O(d^2 + t d) — sub-quadratic (in fact
    // sub-linear here) — while full recompute is O(t d^2 + t^2 d) and
    // must grow super-linearly once the attention term dominates.
    let ctx_growth = *contexts.last().unwrap() as f64 / contexts[0] as f64;
    let cached_growth = cached_f64.last().unwrap() / cached_f64[0];
    let full_growth = full_f64.last().unwrap() / full_f64[0];
    let cached_subquadratic = cached_growth < ctx_growth * ctx_growth;
    let full_superlinear = full_growth > ctx_growth;
    eprintln!(
        "bench_snapshot: growth over {ctx_growth:.0}x context: cached {cached_growth:.2}x \
         full {full_growth:.2}x cached_subquadratic={cached_subquadratic} \
         full_superlinear={full_superlinear}"
    );
    let growth_rows = vec![format!(
        concat!(
            "        {{\n",
            "          \"context_growth\": {},\n",
            "          \"cached_f64_growth\": {},\n",
            "          \"full_f64_growth\": {},\n",
            "          \"cached_subquadratic\": {},\n",
            "          \"full_superlinear\": {}\n",
            "        }}"
        ),
        json_number(ctx_growth),
        json_number(cached_growth),
        json_number(full_growth),
        cached_subquadratic,
        full_superlinear,
    )];

    // --- Section 3: thread sweep at the largest context, with the
    // decode outputs checked bit-identical against the 1-thread run.
    let t = t_max;
    prime_cache(&mut f64_cache, &x, t - 1, |c, r| {
        model.decode_step(c, r).expect("decode step")
    });
    prime_cache(&mut int8_cache, &x, t - 1, |c, r| {
        decoder.step(c, r).expect("decode step")
    });
    let row = Matrix::row_vector(x.row(t - 1));
    let prefix = Matrix::from_vec(t, d, x.as_slice()[..t * d].to_vec()).unwrap();
    let baseline = parallel::with_threads(1, || {
        let y = model
            .decode_step(&mut f64_cache, &row)
            .expect("decode step");
        f64_cache.truncate(t - 1);
        let yi = decoder.step(&mut int8_cache, &row).expect("decode step");
        int8_cache.truncate(t - 1);
        (y, yi)
    });
    let mut sweep_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        eprintln!("bench_snapshot: decode thread sweep, {threads} thread(s)...");
        let (cached_s, full_s, identical) = parallel::with_threads(threads, || {
            let cached_s = time_median(21, || {
                let y = model
                    .decode_step(&mut f64_cache, &row)
                    .expect("decode step");
                f64_cache.truncate(t - 1);
                y
            });
            let full_s = time_median(3, || model.forward_prefix(&prefix).expect("full forward"));
            let y = model
                .decode_step(&mut f64_cache, &row)
                .expect("decode step");
            f64_cache.truncate(t - 1);
            let yi = decoder.step(&mut int8_cache, &row).expect("decode step");
            int8_cache.truncate(t - 1);
            (cached_s, full_s, y == baseline.0 && yi == baseline.1)
        });
        eprintln!(
            "bench_snapshot: {threads} thread(s): cached_step {cached_s:.6}s \
             full_forward {full_s:.4}s bit_identical={identical}"
        );
        sweep_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"threads\": {},\n",
                "          \"cached_step_s\": {},\n",
                "          \"full_forward_s\": {},\n",
                "          \"bit_identical_to_single_thread\": {}\n",
                "        }}"
            ),
            threads,
            json_number(cached_s),
            json_number(full_s),
            identical,
        ));
    }

    let sections = [
        ("per_token_latency", "contexts", latency_rows),
        ("growth_verdicts", "verdicts", growth_rows),
        ("decode_thread_scaling", "sweep", sweep_rows),
    ]
    .map(|(section, key, rows)| {
        format!(
            "    {{\n      \"section\": \"{section}\",\n      \"{key}\": [\n{}\n      ]\n    }}",
            rows.join(",\n"),
        )
    });
    let json = snapshot_json(
        "decode_kernels",
        &[
            "kv_cached_step_f64",
            "kv_cached_step_int8",
            "full_recompute_f64",
            "full_recompute_int8",
        ],
        &[(
            "model",
            format!(
                "{{\"layers\": {}, \"d_model\": {}, \"heads\": {}, \"d_ff\": {}}}",
                cfg.layers, cfg.d_model, cfg.heads, cfg.d_ff
            ),
        )],
        "sections",
        &sections,
    );
    write_or_die(out_path, &json);
}

fn run_serve(out_path: &str) {
    use phox_core::ghost::{GhostAccelerator, GhostConfig};
    use phox_core::serve::{standard_mix, ServeConfig, ServeEngine};
    use phox_core::tron::{TronAccelerator, TronConfig};

    let build_classes = || {
        let tron = TronAccelerator::new(TronConfig::default()).expect("TRON config");
        let ghost = GhostAccelerator::new(GhostConfig::default()).expect("GHOST config");
        standard_mix(&tron, &ghost).expect("standard serving mix")
    };
    // Offered load sweep: from near-idle (windows mostly solo) to
    // saturation (windows full), so the occupancy axis actually moves.
    let rates_hz = [500.0f64, 2_000.0, 8_000.0, 32_000.0];
    let mut rate_rows = Vec::new();
    let mut occupancies = Vec::new();
    let mut jprs = Vec::new();
    let mut all_thread_identical = true;
    for &rate in &rates_hz {
        eprintln!("bench_snapshot: serve sweep at {rate:.0} req/s...");
        let config = ServeConfig {
            arrival_rate_hz: rate,
            duration_s: 0.05,
            ..ServeConfig::default()
        };
        let run_once = || {
            ServeEngine::new(config, build_classes())
                .expect("serve engine")
                .run()
                .expect("serve run")
        };
        let report = parallel::with_threads(1, run_once);
        let baseline_json = report.to_json();
        let thread_identical = [2usize, 4, 8]
            .iter()
            .all(|&threads| parallel::with_threads(threads, run_once).to_json() == baseline_json);
        all_thread_identical &= thread_identical;
        eprintln!(
            "bench_snapshot: {rate:.0} req/s: occupancy {:.2} qps {:.0} p99 {:.2}ms \
             J/req {:.4} rejected {} thread_identical={thread_identical}",
            report.mean_occupancy,
            report.sustained_qps,
            report.p99_latency_s * 1e3,
            report.joules_per_request,
            report.rejected,
        );
        occupancies.push(report.mean_occupancy);
        jprs.push(report.joules_per_request);
        rate_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"offered_rate_hz\": {},\n",
                "          \"arrivals\": {},\n",
                "          \"admitted\": {},\n",
                "          \"rejected\": {},\n",
                "          \"completed\": {},\n",
                "          \"windows\": {},\n",
                "          \"mean_occupancy\": {},\n",
                "          \"sustained_qps\": {},\n",
                "          \"p50_latency_s\": {},\n",
                "          \"p99_latency_s\": {},\n",
                "          \"joules_per_request\": {},\n",
                "          \"thread_identical\": {}\n",
                "        }}"
            ),
            json_number(rate),
            report.arrivals,
            report.admitted,
            report.rejected,
            report.completed,
            report.windows,
            json_number(report.mean_occupancy),
            json_number(report.sustained_qps),
            json_number(report.p50_latency_s),
            json_number(report.p99_latency_s),
            json_number(report.joules_per_request),
            thread_identical,
        ));
    }

    // Verdicts: occupancy must rise with offered load, and amortised
    // residency must pull joules/request down as the windows fill.
    let occupancy_rises = occupancies.windows(2).all(|w| w[1] >= w[0]);
    let jpr_decreases = jprs.windows(2).all(|w| w[1] <= w[0]);
    eprintln!(
        "bench_snapshot: serve verdicts: occupancy_rises={occupancy_rises} \
         jpr_decreases_with_occupancy={jpr_decreases} \
         all_thread_identical={all_thread_identical}"
    );
    let verdict_rows = vec![format!(
        concat!(
            "        {{\n",
            "          \"occupancy_rises_with_load\": {},\n",
            "          \"joules_per_request_decreases_with_occupancy\": {},\n",
            "          \"reports_bit_identical_across_threads\": {}\n",
            "        }}"
        ),
        occupancy_rises, jpr_decreases, all_thread_identical,
    )];

    let sections = [
        ("rate_sweep", "rates", rate_rows),
        ("serve_verdicts", "verdicts", verdict_rows),
    ]
    .map(|(section, key, rows)| {
        format!(
            "    {{\n      \"section\": \"{section}\",\n      \"{key}\": [\n{}\n      ]\n    }}",
            rows.join(",\n"),
        )
    });
    let json = snapshot_json(
        "serving_under_load",
        &["prefill/BERT-base", "decode/GPT-2", "gnn/gcn/cora"],
        &[
            (
                "engine",
                "{\"max_batch\": 16, \"duration_s\": 0.05, \"thread_sweep\": [1, 2, 4, 8]}"
                    .to_string(),
            ),
            // Unlike the kernel snapshots, every latency here is
            // deterministic simulated time, not a wall-clock measurement.
            ("time_base", "\"deterministic model seconds\"".to_string()),
        ],
        "sections",
        &sections,
    );
    write_or_die(out_path, &json);
}

/// One rung of the accuracy-cliff ladder: a fault budget expressed as
/// stuck rings + dead ADC lanes + a drift magnitude.
struct FaultBudget {
    label: &'static str,
    stuck: usize,
    dead_lanes: &'static [usize],
    drift_nm: f64,
}

impl FaultBudget {
    fn fault_count(&self) -> usize {
        self.stuck + self.dead_lanes.len() + usize::from(self.drift_nm > 0.0)
    }

    /// Builds the plan against a given bank geometry. Stuck cells walk a
    /// stride-7 row pattern (coprime with both array heights) so the
    /// ladder never double-faults a cell.
    fn plan(
        &self,
        rows: usize,
        channels: usize,
    ) -> Result<phox_core::photonics::fault::FaultPlan, String> {
        use phox_core::photonics::fault::FaultPlan;
        let mut plan = FaultPlan::new(rows, channels);
        for i in 0..self.stuck {
            plan = plan
                .stuck_mr((i * 7) % rows, (i * 3) % channels, 0.7)
                .map_err(|e| e.to_string())?;
        }
        for &lane in self.dead_lanes {
            plan = plan.dead_adc_lane(lane).map_err(|e| e.to_string())?;
        }
        if self.drift_nm > 0.0 {
            plan = plan
                .thermal_drift(self.drift_nm)
                .map_err(|e| e.to_string())?;
        }
        Ok(plan)
    }
}

const FAULT_BUDGETS: &[FaultBudget] = &[
    FaultBudget {
        label: "fault-free",
        stuck: 0,
        dead_lanes: &[],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "2 stuck rings",
        stuck: 2,
        dead_lanes: &[],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "4 stuck rings",
        stuck: 4,
        dead_lanes: &[],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "8 stuck rings",
        stuck: 8,
        dead_lanes: &[],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "16 stuck rings",
        stuck: 16,
        dead_lanes: &[],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "16 stuck + 2 dead lanes",
        stuck: 16,
        dead_lanes: &[3, 9],
        drift_nm: 0.0,
    },
    FaultBudget {
        label: "16 stuck + 2 dead + 1.5nm drift",
        stuck: 16,
        dead_lanes: &[3, 9],
        drift_nm: 1.5,
    },
    FaultBudget {
        label: "10nm drift (uncompensatable)",
        stuck: 0,
        dead_lanes: &[],
        drift_nm: 10.0,
    },
];

/// JSON for one accuracy leg: the scored report, or the typed error
/// string when the budget is uncompensatable.
fn leg_json(result: &Result<phox_core::nn::quant_eval::QuantReport, String>) -> String {
    use phox_core::trace::json::json_string;
    match result {
        Ok(r) => format!(
            concat!(
                "{{\"fp_accuracy\": {}, \"hw_accuracy\": {}, ",
                "\"agreement\": {}, \"mean_relative_error\": {}}}"
            ),
            json_number(r.fp_accuracy),
            json_number(r.int8_accuracy),
            json_number(r.agreement),
            json_number(r.mean_relative_error),
        ),
        Err(e) => format!("{{\"error\": {}}}", json_string(e)),
    }
}

fn run_faults(out_path: &str) {
    use phox_core::ghost::{GhostConfig, GhostFunctional};
    use phox_core::nn::datasets::{labelled_sequences, sbm};
    use phox_core::nn::quant_eval::{
        evaluate_gnn_int8, evaluate_gnn_outputs, evaluate_transformer_int8,
        evaluate_transformer_outputs, QuantReport,
    };
    use phox_core::photonics::fault::FaultSchedule;
    use phox_core::serve::{
        standard_mix, FaultContext, HazardTimeline, ProbeConfig, RecoveryPolicy, ServeConfig,
        ServeEngine,
    };
    use phox_core::trace::json::json_string;
    use phox_core::tron::{TronAccelerator, TronConfig, TronFunctional};

    // --- Section 1: the accuracy cliff. Faulted photonic outputs scored
    // against the f64 oracle, across a ladder of fault budgets.
    let tron_cfg = TronConfig::default();
    let ghost_cfg = GhostConfig::default();
    let seq_task = labelled_sequences(8, 3, 8, 32, 0xACC1).expect("sequence task");
    let tf_model = TransformerModel::random(TransformerConfig::tiny(8), 0xACC2).expect("model");
    let graph_task = sbm(3, 12, 16, 0.5, 0.05, 0xACC3).expect("graph task");
    let gnn_model =
        GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 16, 32, 3), 0xACC4).expect("gnn model");

    // Fault-free int8 reference: the paper's §VI "int8 is comparable"
    // claim, restated here so the cliff has a quantization baseline.
    let int8_tf = evaluate_transformer_int8(&tf_model, &seq_task).expect("int8 transformer");
    let int8_gnn = evaluate_gnn_int8(&gnn_model, &graph_task).expect("int8 gnn");

    let mut cliff_rows = Vec::new();
    let mut tron_errors = Vec::new();
    let mut ghost_errors = Vec::new();
    let mut last_uncompensatable = (false, false);
    for budget in FAULT_BUDGETS {
        eprintln!("bench_snapshot: fault budget '{}'...", budget.label);
        let tron_leg: Result<QuantReport, String> = budget
            .plan(tron_cfg.array_rows, tron_cfg.array_channels)
            .and_then(|plan| {
                let mut sim = TronFunctional::with_faults(&tron_cfg, plan, 0xACC5)
                    .map_err(|e| e.to_string())?;
                let mut outs = Vec::with_capacity(seq_task.inputs.len());
                for x in &seq_task.inputs {
                    outs.push(sim.forward(&tf_model, x).map_err(|e| e.to_string())?);
                }
                evaluate_transformer_outputs(&tf_model, &seq_task, &outs).map_err(|e| e.to_string())
            });
        let ghost_leg: Result<QuantReport, String> = budget
            .plan(ghost_cfg.array_rows, ghost_cfg.array_channels)
            .and_then(|plan| {
                let mut sim = GhostFunctional::with_faults(&ghost_cfg, plan, 0xACC6)
                    .map_err(|e| e.to_string())?;
                let out = sim
                    .forward(&gnn_model, &graph_task.graph, &graph_task.features)
                    .map_err(|e| e.to_string())?;
                evaluate_gnn_outputs(&gnn_model, &graph_task, &out).map_err(|e| e.to_string())
            });
        if let Ok(r) = &tron_leg {
            tron_errors.push(r.mean_relative_error);
        }
        if let Ok(r) = &ghost_leg {
            ghost_errors.push(r.mean_relative_error);
        }
        last_uncompensatable = (tron_leg.is_err(), ghost_leg.is_err());
        cliff_rows.push(format!(
            concat!(
                "        {{\n",
                "          \"budget\": {},\n",
                "          \"fault_count\": {},\n",
                "          \"tron\": {},\n",
                "          \"ghost\": {}\n",
                "        }}"
            ),
            json_string(budget.label),
            budget.fault_count(),
            leg_json(&tron_leg),
            leg_json(&ghost_leg),
        ));
    }

    // --- Section 2: availability under runtime faults, per recovery
    // policy. Seeded random fault timelines at rising arrival rates.
    let tron_accel = TronAccelerator::new(tron_cfg).expect("TRON accelerator");
    let ghost_accel =
        phox_core::ghost::GhostAccelerator::new(ghost_cfg).expect("GHOST accelerator");
    let build_classes = || {
        standard_mix(&tron_accel, &ghost_accel)
            .expect("standard serving mix")
            .into_iter()
            .map(|c| c.with_deadline(25e-3).expect("deadline"))
            .collect::<Vec<_>>()
    };
    // Operating point: mild load, so the fault-free baseline is healthy
    // (availability near 1) and any cliff in the sweep is the faults'.
    let serve_config = ServeConfig {
        arrival_rate_hz: 3_000.0,
        duration_s: 0.1,
        ..ServeConfig::default()
    };
    let policies = [
        RecoveryPolicy::None,
        RecoveryPolicy::RetryBackoff {
            max_retries: 3,
            base_backoff_s: 200e-6,
        },
        RecoveryPolicy::Degrade {
            max_retries: 3,
            base_backoff_s: 200e-6,
            recalibration_s: 1e-3,
            fallback_slowdown: 1.5,
        },
    ];
    let fault_rates_hz = [0.0f64, 50.0, 200.0, 800.0];
    let mut policy_rows = Vec::new();
    let mut all_thread_identical = true;
    let mut empty_schedule_noop = true;
    let mut availability = vec![Vec::new(); policies.len()];
    for &fault_rate in &fault_rates_hz {
        let schedule = FaultSchedule::random(
            0x5EED,
            tron_accel.config().array_rows,
            tron_accel.config().array_channels,
            fault_rate,
            serve_config.duration_s,
            4e-3,
            0.7,
        )
        .expect("fault schedule");
        let timeline =
            HazardTimeline::resolve_tron(&schedule, tron_accel.config()).expect("hazard timeline");
        for (p_idx, policy) in policies.iter().enumerate() {
            eprintln!(
                "bench_snapshot: fault sweep at {fault_rate:.0}/s, policy {}...",
                policy.name()
            );
            let ctx = FaultContext::new(timeline.clone(), *policy, ProbeConfig::default())
                .expect("fault context");
            let run_once = || {
                ServeEngine::with_faults(serve_config, build_classes(), ctx.clone())
                    .expect("serve engine")
                    .run()
                    .expect("serve run")
            };
            let report = parallel::with_threads(1, run_once);
            let baseline_json = report.to_json();
            let thread_identical = [2usize, 4, 8].iter().all(|&threads| {
                parallel::with_threads(threads, run_once).to_json() == baseline_json
            });
            all_thread_identical &= thread_identical;
            if fault_rate == 0.0 {
                // Rate zero ⇒ empty schedule ⇒ the fault machinery must
                // be a strict no-op against the plain engine.
                let plain = ServeEngine::new(serve_config, build_classes())
                    .expect("serve engine")
                    .run()
                    .expect("serve run");
                empty_schedule_noop &= plain.to_json() == baseline_json;
            }
            let avail = report.completed as f64 / report.admitted as f64;
            availability[p_idx].push(avail);
            eprintln!(
                "bench_snapshot: {fault_rate:.0}/s {}: availability {:.4} p99 {:.2}ms \
                 J/req {:.4} dropped {} timed_out {} failed_windows {}",
                policy.name(),
                avail,
                report.p99_latency_s * 1e3,
                report.joules_per_request,
                report.dropped,
                report.timed_out,
                report.failed_windows,
            );
            policy_rows.push(format!(
                concat!(
                    "        {{\n",
                    "          \"fault_rate_hz\": {},\n",
                    "          \"policy\": {},\n",
                    "          \"arrivals\": {},\n",
                    "          \"admitted\": {},\n",
                    "          \"completed\": {},\n",
                    "          \"dropped\": {},\n",
                    "          \"timed_out\": {},\n",
                    "          \"retried\": {},\n",
                    "          \"degraded\": {},\n",
                    "          \"failed_windows\": {},\n",
                    "          \"probes\": {},\n",
                    "          \"availability\": {},\n",
                    "          \"p99_latency_s\": {},\n",
                    "          \"joules_per_request\": {},\n",
                    "          \"thread_identical\": {}\n",
                    "        }}"
                ),
                json_number(fault_rate),
                json_string(policy.name()),
                report.arrivals,
                report.admitted,
                report.completed,
                report.dropped,
                report.timed_out,
                report.retried,
                report.degraded,
                report.failed_windows,
                report.probes,
                json_number(avail),
                json_number(report.p99_latency_s),
                json_number(report.joules_per_request),
                thread_identical,
            ));
        }
    }

    // --- Verdicts.
    let int8_comparable = int8_tf.is_comparable(0.25) && int8_gnn.is_comparable(0.1);
    let cliff_widens = tron_errors.len() >= 2
        && ghost_errors.len() >= 2
        && tron_errors.last() > tron_errors.first()
        && ghost_errors.last() > ghost_errors.first();
    let uncompensatable_typed = last_uncompensatable.0 && last_uncompensatable.1;
    let peak = fault_rates_hz.len() - 1;
    let recovery_beats_none =
        availability[1][peak].max(availability[2][peak]) >= availability[0][peak];
    let faults_cost_availability = availability[0][peak] < availability[0][0];
    eprintln!(
        "bench_snapshot: fault verdicts: int8_comparable={int8_comparable} \
         cliff_widens={cliff_widens} uncompensatable_typed={uncompensatable_typed} \
         recovery_beats_none={recovery_beats_none} \
         faults_cost_availability={faults_cost_availability} \
         empty_schedule_noop={empty_schedule_noop} \
         all_thread_identical={all_thread_identical}"
    );
    let verdict_rows = vec![format!(
        concat!(
            "        {{\n",
            "          \"int8_reference_comparable\": {},\n",
            "          \"accuracy_cliff_widens_with_budget\": {},\n",
            "          \"uncompensatable_budget_is_typed_error\": {},\n",
            "          \"faults_cost_availability\": {},\n",
            "          \"recovery_beats_none_at_peak_rate\": {},\n",
            "          \"empty_schedule_is_noop\": {},\n",
            "          \"reports_bit_identical_across_threads\": {}\n",
            "        }}"
        ),
        int8_comparable,
        cliff_widens,
        uncompensatable_typed,
        faults_cost_availability,
        recovery_beats_none,
        empty_schedule_noop,
        all_thread_identical,
    )];

    let sections = [
        ("accuracy_cliff", "budgets", cliff_rows),
        ("availability_sweep", "runs", policy_rows),
        ("fault_verdicts", "verdicts", verdict_rows),
    ]
    .map(|(section, key, rows)| {
        format!(
            "    {{\n      \"section\": \"{section}\",\n      \"{key}\": [\n{}\n      ]\n    }}",
            rows.join(",\n"),
        )
    });
    let json = snapshot_json(
        "accuracy_under_physics",
        &["tron/functional", "ghost/functional", "serve/fault-aware"],
        &[
            (
                "int8_reference",
                format!(
                    "{{\"transformer\": {}, \"gnn\": {}}}",
                    leg_json(&Ok(int8_tf)),
                    leg_json(&Ok(int8_gnn)),
                ),
            ),
            (
                "fault_model",
                "{\"probe_interval_s\": 5e-4, \"mean_active_s\": 4e-3, \
                 \"severe_share\": 0.7, \"deadline_s\": 0.025}"
                    .to_string(),
            ),
            ("time_base", "\"deterministic model seconds\"".to_string()),
        ],
        "sections",
        &sections,
    );
    write_or_die(out_path, &json);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("all") => {
            run_gemm("BENCH_1.json");
            run_sparse("BENCH_2.json");
            run_int8("BENCH_3.json");
            run_decode("BENCH_4.json");
            run_serve("BENCH_5.json");
            run_faults("BENCH_6.json");
        }
        Some("gemm") => run_gemm(args.get(1).map_or("BENCH_1.json", String::as_str)),
        Some("sparse") => run_sparse(args.get(1).map_or("BENCH_2.json", String::as_str)),
        Some("int8") => run_int8(args.get(1).map_or("BENCH_3.json", String::as_str)),
        Some("decode") => run_decode(args.get(1).map_or("BENCH_4.json", String::as_str)),
        Some("serve") => run_serve(args.get(1).map_or("BENCH_5.json", String::as_str)),
        Some("faults") => run_faults(args.get(1).map_or("BENCH_6.json", String::as_str)),
        Some("digest") => run_digest(args.get(1).map_or("BENCH_DIGEST.json", String::as_str)),
        // Legacy invocation: a bare output path means the gemm snapshot.
        Some(path) => run_gemm(path),
    }
}
