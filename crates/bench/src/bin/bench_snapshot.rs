//! Records a GEMM kernel speedup snapshot as JSON.
//!
//! Runs the textbook i-j-k loop, the cache-blocked packed-`Bᵀ` kernel,
//! and the blocked kernel with row-band parallelism at 64 / 256 / 1024,
//! and writes per-size timings plus blocked-vs-naive and
//! parallel-vs-naive speedups. The acceptance gate for the parallel
//! backend PR is the blocked kernel reaching ≥4× over naive at 1024.
//!
//! Usage: `bench_snapshot [OUTPUT.json]` (default `BENCH_1.json`).

use std::time::Instant;

use phox_core::tensor::{gemm, parallel, Matrix, Prng};
use phox_core::trace::json::json_number;

/// Median-of-`reps` wall time for one evaluation of `f`, in seconds.
fn time_median<F: FnMut() -> Matrix>(reps: usize, mut f: F) -> f64 {
    // One warm-up evaluation so page faults and allocator growth are
    // excluded from every sample.
    let sink = f();
    let mut checksum = sink.get(0, 0);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            checksum += out.get(0, 0);
            dt
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    assert!(checksum.is_finite());
    samples[samples.len() / 2]
}

struct SizeReport {
    n: usize,
    naive_s: f64,
    blocked_s: f64,
    parallel_s: f64,
}

impl SizeReport {
    fn blocked_speedup(&self) -> f64 {
        self.naive_s / self.blocked_s
    }

    fn parallel_speedup(&self) -> f64 {
        self.naive_s / self.parallel_s
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"naive_s\": {},\n",
                "      \"blocked_s\": {},\n",
                "      \"parallel_s\": {},\n",
                "      \"blocked_speedup\": {},\n",
                "      \"parallel_speedup\": {}\n",
                "    }}"
            ),
            self.n,
            json_number(self.naive_s),
            json_number(self.blocked_s),
            json_number(self.parallel_s),
            json_number(self.blocked_speedup()),
            json_number(self.parallel_speedup()),
        )
    }
}

fn measure(n: usize, reps: usize) -> SizeReport {
    let a = Prng::new(1).fill_uniform(n, n, -1.0, 1.0);
    let b = Prng::new(2).fill_uniform(n, n, -1.0, 1.0);
    let naive_s = time_median(reps, || gemm::matmul_naive(&a, &b).unwrap());
    let blocked_s = time_median(reps, || gemm::matmul_blocked(&a, &b).unwrap());
    let parallel_s = time_median(reps, || gemm::matmul(&a, &b).unwrap());
    SizeReport {
        n,
        naive_s,
        blocked_s,
        parallel_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_1.json".to_string());
    let sizes_reps = [(64usize, 21usize), (256, 9), (1024, 3)];
    let mut reports = Vec::new();
    for &(n, reps) in &sizes_reps {
        eprintln!("bench_snapshot: measuring n = {n} ({reps} reps)...");
        let r = measure(n, reps);
        eprintln!(
            "bench_snapshot: n = {n}: naive {:.4}s blocked {:.4}s ({:.2}x) parallel {:.4}s ({:.2}x)",
            r.naive_s,
            r.blocked_s,
            r.blocked_speedup(),
            r.parallel_s,
            r.parallel_speedup(),
        );
        reports.push(r);
    }
    let rows: Vec<String> = reports.iter().map(SizeReport::to_json).collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"gemm_kernels\",\n",
            "  \"kernels\": [\"naive_ijk\", \"blocked_packed_bt\", \"blocked_parallel\"],\n",
            "  \"threads\": {},\n",
            "  \"timing\": \"median wall seconds\",\n",
            "  \"sizes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        parallel::max_threads(),
        rows.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_snapshot: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("bench_snapshot: wrote {out_path}");
}
