//! # phox-bench
//!
//! The figure-regeneration harness: one function per table/figure of the
//! paper's evaluation section (see the per-experiment index in
//! DESIGN.md). The `figures` binary prints them; the Criterion benches
//! under `benches/` time the underlying simulations.
//!
//! | experiment | function |
//! |---|---|
//! | E1 (Fig. 8)  | [`fig8_epb_tron`] |
//! | E2 (Fig. 9)  | [`fig9_gops_tron`] |
//! | E3 (Fig. 10) | [`fig10_epb_ghost`] |
//! | E4 (Fig. 11) | [`fig11_gops_ghost`] |
//! | E5 (Fig. 3)  | [`fig3_mr_response`] |
//! | E6 (§VI quantization) | [`quantization_table`] |
//! | E7 (§VI design space) | [`design_space_table`] |
//! | E8 (headline claims)  | [`summary`] |
//! | A1 (tuning ablation)  | [`ablate_tuning`] |
//! | A2 (GHOST optimizations) | [`ablate_ghost`] |
//! | A3 (eq. (3) decomposition) | [`ablate_tron`] |
//! | X1 (§VII process variation) | [`variation_table`] |
//! | X2 (§VII non-volatile weights) | [`pcm_table`] |
//! | X3 (sensitivity sweeps) | [`sensitivity_sweeps`] |
//! | X4 (noise robustness) | [`noise_robustness_table`] |
//! | X5 (precision sensitivity) | [`precision_table`] |
//! | X6 (energy breakdown) | [`energy_breakdown`] |
//! | X7 (autoregressive generation) | [`generation_table`] |
//! | X8 (coherent vs non-coherent, §IV) | [`coherent_table`] |

#![warn(missing_docs)]

use std::fmt::Write as _;

use phox_core::prelude::*;
use phox_core::tensor::parallel;
use phox_core::trace::json::{json_number, json_string};

/// A rendered figure: a title plus rows of `(label, series values)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title (e.g. "Fig. 8: EPB comparison across Transformer
    /// accelerators").
    pub title: String,
    /// Column headers (workload names).
    pub columns: Vec<String>,
    /// One row per platform: `(platform, values)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Unit of the values.
    pub unit: &'static str,
}

impl Figure {
    /// Serializes the figure as pretty-printed JSON, the
    /// machine-readable form for external plotting tools.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": {},", json_string(&self.title));
        out.push_str("  \"columns\": [");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(c));
        }
        out.push_str("],\n  \"rows\": [\n");
        for (i, (name, values)) in self.rows.iter().enumerate() {
            let _ = write!(out, "    [{}, [", json_string(name));
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_number(*v));
            }
            out.push_str("]]");
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = write!(out, "  ],\n  \"unit\": {}\n}}", json_string(self.unit));
        out
    }

    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<14}", "platform");
        for c in &self.columns {
            let _ = write!(out, "{c:>16}");
        }
        let _ = writeln!(out, "   [{}]", self.unit);
        for (name, values) in &self.rows {
            let _ = write!(out, "{name:<14}");
            for v in values {
                if *v >= 100.0 {
                    let _ = write!(out, "{v:>16.0}");
                } else {
                    let _ = write!(out, "{v:>16.3}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// The transformer workloads of Figs. 8–9 (paper: multiple Transformer
/// models — BERT-base/large, GPT-2, ViT).
pub fn tron_workloads() -> Vec<TransformerConfig> {
    vec![
        TransformerConfig::bert_base(128),
        TransformerConfig::bert_large(128),
        TransformerConfig::gpt2(128),
        TransformerConfig::vit_b16(),
    ]
}

/// The GNN workloads of Figs. 10–11 (paper: multiple GNN models and
/// datasets; Reddit runs GraphSAGE with fan-out 25 sampling).
pub fn ghost_workloads() -> Vec<GnnWorkload> {
    vec![
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gin, 3703, 16, 6),
            GraphShape::citeseer(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gat, 500, 16, 3),
            GraphShape::pubmed(),
        ),
        GnnWorkload::sampled(
            GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
            GraphShape::reddit(),
            25,
        ),
    ]
}

/// Builds the paper-configuration TRON (design-space-derived geometry).
///
/// # Errors
///
/// Propagates design-space and construction failures.
pub fn paper_tron() -> Result<TronAccelerator, PhotonicError> {
    TronAccelerator::new(TronConfig::from_design_space(&SweepConfig::default())?)
}

/// Builds the paper-configuration GHOST.
///
/// # Errors
///
/// Propagates design-space and construction failures.
pub fn paper_ghost() -> Result<GhostAccelerator, PhotonicError> {
    GhostAccelerator::new(GhostConfig::from_design_space(&SweepConfig::default())?)
}

fn comparison_figure(
    title: &str,
    unit: &'static str,
    columns: Vec<String>,
    tables: &[Vec<ComparisonRow>],
    value: impl Fn(&ComparisonRow) -> f64,
) -> Figure {
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for table in tables {
        for row in table {
            // Platform sets are identical across workloads in practice;
            // tolerate a divergent row by starting a new series rather
            // than panicking over a figure.
            match rows.iter_mut().find(|(name, _)| *name == row.platform) {
                Some(entry) => entry.1.push(value(row)),
                None => rows.push((row.platform.clone(), vec![value(row)])),
            }
        }
    }
    Figure {
        title: title.to_owned(),
        columns,
        rows,
        unit,
    }
}

/// E1 / Fig. 8: EPB comparison across transformer platforms.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8_epb_tron(tron: &TronAccelerator) -> Result<Figure, PhotonicError> {
    let workloads = tron_workloads();
    let tables: Vec<_> =
        parallel::par_map_indexed(workloads.len(), |i| tron_comparison(tron, &workloads[i]))
            .into_iter()
            .collect::<Result<_, _>>()?;
    Ok(comparison_figure(
        "Fig. 8: EPB comparison across Transformer accelerators",
        "pJ/bit",
        workloads.iter().map(|m| m.name.clone()).collect(),
        &tables,
        |r| r.epb_j * 1e12,
    ))
}

/// E2 / Fig. 9: throughput comparison across transformer platforms.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig9_gops_tron(tron: &TronAccelerator) -> Result<Figure, PhotonicError> {
    let workloads = tron_workloads();
    let tables: Vec<_> =
        parallel::par_map_indexed(workloads.len(), |i| tron_comparison(tron, &workloads[i]))
            .into_iter()
            .collect::<Result<_, _>>()?;
    Ok(comparison_figure(
        "Fig. 9: GOPS comparison across Transformer accelerators",
        "GOPS",
        workloads.iter().map(|m| m.name.clone()).collect(),
        &tables,
        |r| r.gops,
    ))
}

/// E3 / Fig. 10: EPB comparison across GNN platforms.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10_epb_ghost(ghost: &GhostAccelerator) -> Result<Figure, PhotonicError> {
    let workloads = ghost_workloads();
    let tables: Vec<_> =
        parallel::par_map_indexed(workloads.len(), |i| ghost_comparison(ghost, &workloads[i]))
            .into_iter()
            .collect::<Result<_, _>>()?;
    Ok(comparison_figure(
        "Fig. 10: EPB comparison across GNN accelerators",
        "pJ/bit",
        workloads
            .iter()
            .map(|w| format!("{}/{}", w.model.kind, w.shape.name))
            .collect(),
        &tables,
        |r| r.epb_j * 1e12,
    ))
}

/// E4 / Fig. 11: throughput comparison across GNN platforms.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11_gops_ghost(ghost: &GhostAccelerator) -> Result<Figure, PhotonicError> {
    let workloads = ghost_workloads();
    let tables: Vec<_> =
        parallel::par_map_indexed(workloads.len(), |i| ghost_comparison(ghost, &workloads[i]))
            .into_iter()
            .collect::<Result<_, _>>()?;
    Ok(comparison_figure(
        "Fig. 11: GOPS comparison across GNN accelerators",
        "GOPS",
        workloads
            .iter()
            .map(|w| format!("{}/{}", w.model.kind, w.shape.name))
            .collect(),
        &tables,
        |r| r.gops,
    ))
}

/// E5 / Fig. 3: MR through-port response and heterodyne crosstalk.
///
/// # Errors
///
/// Propagates device-model failures.
pub fn fig3_mr_response() -> Result<String, PhotonicError> {
    use phox_core::photonics::crosstalk::HeterodyneAnalysis;
    let mr = MrConfig::default().validated()?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3(a): through-port response (R={} µm, Q={}, FWHM={:.4} nm)",
        mr.radius_um,
        mr.q_factor,
        mr.fwhm_nm()
    );
    let _ = writeln!(out, "{:>12} {:>12}", "λ−λr (nm)", "T");
    let mut d = -0.4;
    while d <= 0.4001 {
        let _ = writeln!(
            out,
            "{:>12.2} {:>12.4}",
            d,
            mr.through_transmission(1550.0 + d, 1550.0)
        );
        d += 0.05;
    }
    let _ = writeln!(
        out,
        "\nFig. 3(d): worst-case heterodyne crosstalk (8-ring bank)"
    );
    let _ = writeln!(out, "{:>10} {:>14} {:>10}", "CS (nm)", "crosstalk", "8-bit");
    for spacing in [0.4, 0.8, 1.2, 1.6, 2.0] {
        if let Ok(a) = HeterodyneAnalysis::new(&mr, 8, spacing) {
            let _ = writeln!(
                out,
                "{:>10.1} {:>14.3e} {:>10}",
                spacing,
                a.worst_case(),
                if a.supports_bits(8) { "clean" } else { "dirty" }
            );
        }
    }
    Ok(out)
}

/// E6: the 8-bit quantization accuracy table of §VI.
///
/// # Errors
///
/// Propagates model/evaluation failures (boxed, as they span crates).
pub fn quantization_table() -> Result<String, Box<dyn std::error::Error>> {
    use phox_core::nn::datasets::{labelled_sequences, sbm};
    use phox_core::nn::quant_eval::{evaluate_gnn, evaluate_transformer};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "§VI: 8-bit quantization vs full precision (fp accuracy / int8 accuracy / agreement)"
    );
    let seq_task = labelled_sequences(24, 4, 8, 32, 201)?;
    let model = TransformerModel::random(TransformerConfig::tiny(8), 202)?;
    let r = evaluate_transformer(&model, &seq_task)?;
    let _ = writeln!(
        out,
        "{:<22} {:>8.3} {:>8.3} {:>10.3}  comparable: {}",
        "transformer (tiny)",
        r.fp_accuracy,
        r.int8_accuracy,
        r.agreement,
        r.is_comparable(0.15)
    );
    let graph_task = sbm(3, 12, 16, 0.5, 0.05, 203)?;
    for kind in [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin, GnnKind::Gat] {
        let model = GnnModel::random(GnnConfig::two_layer(kind, 16, 32, 3), 204)?;
        let r = evaluate_gnn(&model, &graph_task)?;
        let _ = writeln!(
            out,
            "{:<22} {:>8.3} {:>8.3} {:>10.3}  comparable: {}",
            format!("{kind} (SBM)"),
            r.fp_accuracy,
            r.int8_accuracy,
            r.agreement,
            r.is_comparable(0.1)
        );
    }
    Ok(out)
}

/// E7: the design-space analysis table of §VI.
///
/// # Errors
///
/// Propagates sweep failures.
pub fn design_space_table() -> Result<String, PhotonicError> {
    use phox_core::photonics::design_space::sweep;
    let config = SweepConfig::default();
    let outcome = sweep(&config)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§VI design-space analysis: {} candidates, {} feasible, rejections: {}",
        outcome.examined,
        outcome.feasible.len(),
        outcome.rejections
    );
    let best = outcome
        .best()
        .ok_or(PhotonicError::NoFeasibleDesign {
            examined: outcome.examined,
        })
        .ctx("selecting the best design point")?;
    let _ = writeln!(
        out,
        "selected: R={} µm, Q={}, gap={} nm, CS={} nm → {} channels, ENOB {:.2}, {:.2} dBm/ch",
        best.mr.radius_um,
        best.mr.q_factor,
        best.mr.coupling_gap_nm,
        best.spacing_nm,
        best.channels,
        best.enob,
        best.laser_power_per_channel_dbm
    );
    Ok(out)
}

/// E8: the headline-claims summary.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn summary(tron: &TronAccelerator, ghost: &GhostAccelerator) -> Result<String, PhotonicError> {
    let mut tron_claims_v = Vec::new();
    for m in tron_workloads() {
        tron_claims_v.push(claims(&tron_comparison(tron, &m)?)?);
    }
    let tron_agg = aggregate_claims(&tron_claims_v);
    let mut ghost_claims_v = Vec::new();
    for w in ghost_workloads() {
        ghost_claims_v.push(claims(&ghost_comparison(ghost, &w)?)?);
    }
    let ghost_agg = aggregate_claims(&ghost_claims_v);
    let mean_tron_speedup =
        tron_claims_v.iter().map(|c| c.min_speedup).sum::<f64>() / tron_claims_v.len() as f64;

    let mut out = String::new();
    let _ = writeln!(out, "Headline claims (paper → measured):");
    let _ = writeln!(
        out,
        "  TRON : ≥14× throughput → {:.1}× (mean of per-model minima; global min {:.1}×)",
        mean_tron_speedup, tron_agg.min_speedup
    );
    let _ = writeln!(
        out,
        "  TRON : ≥8× energy efficiency → {:.1}× (global min)",
        tron_agg.min_efficiency
    );
    let _ = writeln!(
        out,
        "  GHOST: ≥10.2× throughput → {:.1}× (global min)",
        ghost_agg.min_speedup
    );
    let _ = writeln!(
        out,
        "  GHOST: ≥3.8× energy efficiency → {:.1}× (global min)",
        ghost_agg.min_efficiency
    );
    Ok(out)
}

/// A1: EO-only vs TO-only vs hybrid tuning, with the TED saving.
///
/// # Errors
///
/// Propagates tuning-model failures.
pub fn ablate_tuning() -> Result<String, PhotonicError> {
    use phox_core::photonics::tuning::{HybridTuning, ThermalField};
    let tuning = HybridTuning::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A1: tuning-policy ablation (energy to hold a shift for one 10 GHz symbol)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>14}",
        "Δλ (nm)", "EO-only (J)", "TO-only (J)", "hybrid (J)"
    );
    for shift in [0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let hold = 1e-10;
        let eo = tuning
            .tune_eo_only(shift)
            .map(|op| format!("{:.2e}", op.energy_j(hold)))
            .unwrap_or_else(|_| "out of range".into());
        let to = tuning
            .tune_to_only(shift)
            .map(|op| format!("{:.2e}", op.energy_j(hold)))
            .unwrap_or_else(|_| "out of range".into());
        let hy = tuning
            .tune(shift)
            .map(|op| format!("{:.2e}", op.energy_j(hold)))
            .unwrap_or_else(|_| "out of range".into());
        let _ = writeln!(out, "{shift:>10.2} {eo:>14} {to:>14} {hy:>14}");
    }
    let field = ThermalField::new(16, 8.0, 10.0)?;
    let targets: Vec<f64> = (0..16).map(|i| 0.4 + 0.02 * i as f64).collect();
    let _ = writeln!(
        out,
        "TED saving over naive thermal drive (16-ring bank): {:.2}×",
        field.ted_saving(&targets)?
    );
    Ok(out)
}

/// A2: the GHOST §V.D optimization ablation on a Reddit-scale workload
/// plus a compute-bound citation workload.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ablate_ghost(base: &GhostConfig) -> Result<String, PhotonicError> {
    let reddit = GnnWorkload::sampled(
        GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
        GraphShape::reddit(),
        25,
    );
    let cora = GnnWorkload::new(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
    );
    let variants: Vec<(&str, Optimizations)> = vec![
        ("all on", Optimizations::default()),
        (
            "no partition",
            Optimizations {
                partition: false,
                ..Optimizations::default()
            },
        ),
        (
            "no pipelining",
            Optimizations {
                pipelining: false,
                ..Optimizations::default()
            },
        ),
        (
            "no DAC sharing",
            Optimizations {
                dac_sharing: false,
                ..Optimizations::default()
            },
        ),
        (
            "no balancing",
            Optimizations {
                balancing: false,
                ..Optimizations::default()
            },
        ),
        ("none", Optimizations::none()),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "A2: GHOST orchestration-optimization ablation");
    let _ = writeln!(
        out,
        "(compute column isolates pipelining/balancing, which end-to-end latency masks when memory-bound)"
    );
    let _ = writeln!(
        out,
        "{:<16} {:>13} {:>13} {:>9} {:>13} {:>13} {:>9}",
        "variant", "Reddit (µs)", "compute (µs)", "(mJ)", "Cora (µs)", "compute (µs)", "(µJ)"
    );
    for (label, opt) in variants {
        let acc = GhostAccelerator::new(GhostConfig {
            optimizations: opt,
            ..base.clone()
        })?;
        let r = acc.simulate(&reddit)?;
        let c = acc.simulate(&cora)?;
        let _ = writeln!(
            out,
            "{:<16} {:>13.1} {:>13.1} {:>9.2} {:>13.2} {:>13.2} {:>9.1}",
            label,
            r.perf.latency_s * 1e6,
            r.latency.compute_s * 1e6,
            r.perf.energy_j * 1e3,
            c.perf.latency_s * 1e6,
            c.latency.compute_s * 1e6,
            c.perf.energy_j * 1e6
        );
    }
    Ok(out)
}

/// A3: the eq. (3) decomposition ablation — attention with the fully
/// optical `(Q·W_Kᵀ)·Xᵀ` dataflow vs a naive dataflow that converts K to
/// the digital domain for the transpose (extra ADC + DAC pass over K).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn ablate_tron(tron: &TronAccelerator) -> Result<String, PhotonicError> {
    let model = TransformerConfig::bert_base(128);
    let report = tron.simulate(&model)?;
    // The naive dataflow pays one extra ADC + DAC conversion for every
    // element of K (s×d per layer) and a digital transpose round-trip
    // latency.
    let s = model.seq_len as u64;
    let d = model.d_model as u64;
    let layers = model.layers as u64;
    let extra_conversions = s * d * layers;
    let cfg = tron.config();
    let extra_energy = extra_conversions as f64
        * (cfg.adc.energy_per_conversion_j() + cfg.dac.energy_per_conversion_j());
    let extra_latency =
        extra_conversions as f64 / (cfg.array_channels as f64 * cfg.symbol_rate_hz) * 2.0;
    let naive_energy = report.perf.energy_j + extra_energy;
    let naive_latency = report.perf.latency_s + extra_latency;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "A3: eq. (3) MatMul-decomposition ablation (BERT-base/s128)"
    );
    let _ = writeln!(
        out,
        "  optical decomposition : {:>10.2} µs {:>10.4} mJ",
        report.perf.latency_s * 1e6,
        report.perf.energy_j * 1e3
    );
    let _ = writeln!(
        out,
        "  digital transpose     : {:>10.2} µs {:>10.4} mJ",
        naive_latency * 1e6,
        naive_energy * 1e3
    );
    let _ = writeln!(
        out,
        "  saving                : {:.2}× latency, {:.2}× energy",
        naive_latency / report.perf.latency_s,
        naive_energy / report.perf.energy_j
    );
    Ok(out)
}

/// X1 (§VII future work): fabrication process-variation analysis —
/// ring/bank yield and correction-power overhead vs process sigma.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn variation_table(tron: &TronAccelerator) -> Result<String, PhotonicError> {
    use phox_core::photonics::tuning::HybridTuning;
    use phox_core::photonics::variation::VariationModel;
    let tuning = HybridTuning::default();
    let mr_count = tron.config().mr_count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "X1: process-variation analysis ({} rings, 64-ring banks, Monte-Carlo 64 banks)",
        mr_count
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>16} {:>12} {:>14}",
        "σ (nm)", "ring yield", "bank yield", "corr. power/ring", "TO share", "chip ovh. (W)"
    );
    for sigma in [0.1, 0.2, 0.4, 0.6, 0.8] {
        let model = VariationModel {
            sigma_resonance_nm: sigma,
            ..VariationModel::default()
        };
        let r = model.analyze(&tuning, 64, 64, 0xFAB)?;
        let overhead = model.accelerator_overhead_w(&tuning, mr_count, 0xFAB)?;
        let _ = writeln!(
            out,
            "{:>10.1} {:>12.3} {:>12.3} {:>13.2} µW {:>12.3} {:>14.3}",
            sigma,
            r.ring_yield,
            r.bank_yield,
            r.mean_correction_power_w * 1e6,
            r.to_fraction,
            overhead
        );
    }
    Ok(out)
}

/// X2 (§VII future work): volatile DAC-tuned weights vs non-volatile PCM
/// weight cells as a function of weight reuse.
///
/// # Errors
///
/// Propagates comparison failures.
pub fn pcm_table() -> Result<String, PhotonicError> {
    use phox_core::photonics::converter::Dac;
    use phox_core::photonics::pcm::{weight_storage_comparison, PcmCell};
    use phox_core::photonics::tuning::HybridTuning;
    let cell = PcmCell::default();
    let dac = Dac::default();
    let tuning = HybridTuning::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "X2: weight storage — DAC-tuned (volatile) vs PCM (non-volatile), 8-bit weights"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>18} {:>18} {:>8}",
        "reuse", "tuned (J/use)", "PCM (J/use)", "winner"
    );
    let mut crossover = 0.0;
    for reuse in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
        let c = weight_storage_comparison(&cell, &dac, &tuning, 8, 1e-10, reuse)?;
        crossover = c.crossover_reuse;
        let _ = writeln!(
            out,
            "{:>12} {:>18.3e} {:>18.3e} {:>8}",
            reuse,
            c.tuned_energy_per_use_j,
            c.pcm_energy_per_use_j,
            if c.pcm_wins { "PCM" } else { "tuned" }
        );
    }
    let _ = writeln!(out, "crossover reuse factor: {crossover:.0} uses/write");
    Ok(out)
}

/// X3: sensitivity sweeps — TRON vs sequence length and batch size,
/// GHOST vs neighbour-sampling fan-out. These extend the paper's
/// single-point workloads into the trends that explain them (attention's
/// quadratic term, weight-streaming amortisation, and the
/// aggregation/combination balance).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn sensitivity_sweeps(
    tron: &TronAccelerator,
    ghost: &GhostAccelerator,
) -> Result<String, PhotonicError> {
    let mut out = String::new();
    let _ = writeln!(out, "X3a: TRON vs sequence length (BERT-base)");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "seq", "GOPS", "pJ/bit", "µs/inf"
    );
    for seq in [128usize, 256, 384, 512] {
        let r = tron.simulate(&TransformerConfig::bert_base(seq))?;
        let _ = writeln!(
            out,
            "{:>8} {:>12.0} {:>12.3} {:>12.2}",
            seq,
            r.perf.gops(),
            r.perf.epb_j() * 1e12,
            r.perf.latency_s * 1e6
        );
    }
    let _ = writeln!(
        out,
        "
X3b: TRON vs batch size (BERT-base/s128)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "batch", "GOPS", "pJ/bit", "µs/inf"
    );
    for batch in [1usize, 4, 16, 64] {
        let acc = TronAccelerator::new(TronConfig {
            batch,
            ..tron.config().clone()
        })?;
        let r = acc.simulate(&TransformerConfig::bert_base(128))?;
        let _ = writeln!(
            out,
            "{:>8} {:>12.0} {:>12.3} {:>12.2}",
            batch,
            r.perf.gops(),
            r.perf.epb_j() * 1e12,
            r.perf.latency_s * 1e6
        );
    }
    let _ = writeln!(
        out,
        "
X3c: GHOST vs neighbour fan-out (GraphSAGE/Reddit)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "fanout", "GOPS", "pJ/bit", "ms/inf"
    );
    for fanout in [5usize, 10, 25, 50, 100] {
        let w = GnnWorkload::sampled(
            GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
            GraphShape::reddit(),
            fanout,
        );
        let r = ghost.simulate(&w)?;
        let _ = writeln!(
            out,
            "{:>8} {:>12.0} {:>12.3} {:>12.2}",
            fanout,
            r.perf.gops(),
            r.perf.epb_j() * 1e12,
            r.perf.latency_s * 1e3
        );
    }
    let _ = writeln!(
        out,
        "\nX3d: TRON vs wavelength parallelism (array channels, BERT-base/s128)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>14}",
        "channels", "GOPS", "pJ/bit", "laser W/array"
    );
    for channels in [8usize, 16, 25, 32] {
        match TronAccelerator::new(TronConfig {
            array_channels: channels,
            ..tron.config().clone()
        }) {
            Ok(acc) => {
                let r = acc.simulate(&TransformerConfig::bert_base(128))?;
                let _ = writeln!(
                    out,
                    "{:>10} {:>12.0} {:>12.3} {:>14.3}",
                    channels,
                    r.perf.gops(),
                    r.perf.epb_j() * 1e12,
                    acc.array_laser_w()
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{channels:>10} infeasible: {e}");
            }
        }
    }
    Ok(out)
}

/// X4: noise-robustness sweep — prediction agreement between the analog
/// datapath and the digital reference as the receiver noise grows beyond
/// the provisioned operating point (the ROBIN-style robustness analysis
/// of the paper's lineage).
///
/// # Errors
///
/// Propagates simulation failures (boxed, spans crates).
pub fn noise_robustness_table() -> Result<String, Box<dyn std::error::Error>> {
    use phox_core::nn::datasets::sbm;
    use phox_core::tensor::{ops, stats};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "X4: analog-vs-digital agreement vs receiver noise (σ/signal)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>16}",
        "σ", "transformer err", "GCN agreement"
    );
    let tron_cfg = TronConfig::default();
    let ghost_cfg = GhostConfig::default();
    let model = TransformerModel::random(TransformerConfig::tiny(8), 301)?;
    let x = Prng::new(302).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x)?;
    let task = sbm(3, 10, 12, 0.5, 0.05, 303)?;
    let gnn = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 12, 16, 3), 304)?;
    let gnn_ref = ops::argmax_rows(&gnn.forward(&task.graph, &task.features)?);
    for sigma in [0.0, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1] {
        let mut tsim = phox_core::tron::TronFunctional::with_noise(&tron_cfg, sigma, 305)?;
        let terr = stats::relative_error(&reference, &tsim.forward(&model, &x)?);
        let mut gsim = phox_core::ghost::GhostFunctional::with_noise(&ghost_cfg, sigma, 306)?;
        let gpred = ops::argmax_rows(&gsim.forward(&gnn, &task.graph, &task.features)?);
        let agree = stats::accuracy(&gpred, &gnn_ref);
        let _ = writeln!(out, "{sigma:>10.0e} {terr:>16.3} {agree:>16.2}");
    }
    Ok(out)
}

/// X5: precision sensitivity — digital fake-quantization agreement with
/// full precision across bit widths, joined with the *hardware cost* of
/// sustaining that precision on TRON (converter energy grows with
/// 2^bits; the receiver noise budget caps the reachable ENOB). Together
/// they motivate the paper's 8-bit choice from both sides: fewer bits
/// lose accuracy, more bits cost converter energy — and beyond the noise
/// ceiling are physically unreachable.
///
/// # Errors
///
/// Propagates model failures (boxed, spans crates).
pub fn precision_table() -> Result<String, Box<dyn std::error::Error>> {
    use phox_core::nn::datasets::sbm;
    use phox_core::photonics::converter::{Adc, Dac};
    use phox_core::tensor::{ops, stats};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "X5: accuracy and hardware cost vs weight/activation precision"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>16} {:>16} {:>18}",
        "bits", "transformer err", "GCN agreement", "TRON EPB (pJ/bit)"
    );
    let model = TransformerModel::random(TransformerConfig::tiny(8), 311)?;
    let x = Prng::new(312).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x)?;
    let task = sbm(3, 10, 12, 0.5, 0.05, 313)?;
    let gnn = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 12, 16, 3), 314)?;
    let gnn_ref = ops::argmax_rows(&gnn.forward(&task.graph, &task.features)?);
    for bits in [2u32, 4, 6, 8, 10, 12] {
        let terr = stats::relative_error(&reference, &model.forward_quantized_bits(&x, bits)?);
        let gpred =
            ops::argmax_rows(&gnn.forward_quantized_bits(&task.graph, &task.features, bits)?);
        let agree = stats::accuracy(&gpred, &gnn_ref);
        // Hardware side: a TRON provisioned for this precision.
        let hw = TronConfig {
            adc: Adc {
                bits,
                ..Adc::default()
            },
            dac: Dac {
                bits,
                ..Dac::default()
            },
            ..TronConfig::default()
        };
        let epb = match TronAccelerator::new(hw)
            .and_then(|acc| acc.simulate(&TransformerConfig::bert_base(128)))
        {
            Ok(r) => format!("{:.3}", r.perf.epb_j() * 1e12),
            Err(_) => "infeasible".to_owned(),
        };
        let _ = writeln!(out, "{bits:>8} {terr:>16.4} {agree:>16.2} {epb:>18}");
    }
    Ok(out)
}

/// X6: itemised energy breakdown of both accelerators on their flagship
/// workloads — which component dominates the photonic energy budget.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn energy_breakdown(
    tron: &TronAccelerator,
    ghost: &GhostAccelerator,
) -> Result<String, PhotonicError> {
    let tr = tron.simulate(&TransformerConfig::bert_base(128))?;
    let gw = GnnWorkload::new(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
    );
    let gr = ghost.simulate(&gw)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "X6: per-inference energy breakdown (fractions of total)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "system", "laser", "tuning", "DAC", "ADC", "recv", "digital", "memory", "static"
    );
    for (name, e) in [("TRON", &tr.energy), ("GHOST", &gr.energy)] {
        let t = e.total_j();
        let _ = writeln!(
            out,
            "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            name,
            e.laser_j / t,
            e.tuning_j / t,
            e.dac_j / t,
            e.adc_j / t,
            e.receiver_j / t,
            e.digital_j / t,
            e.memory_j / t,
            e.static_j / t
        );
    }
    let _ = writeln!(
        out,
        "TRON total {:.3} mJ/inference; GHOST total {:.3} µJ/inference",
        tr.energy.total_j() * 1e3,
        gr.energy.total_j() * 1e6
    );
    Ok(out)
}

/// X7: autoregressive generation (KV-cached decode) — the LLM-serving
/// workload behind the paper's motivation. Both TRON and the GPU hit the
/// decode memory wall (weights re-stream every token), so the photonic
/// advantage shrinks from the ~14× of prefill towards the ratio of the
/// two memory systems — an honest negative-space result the prefill
/// figures do not show.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn generation_table(tron: &TronAccelerator) -> Result<String, PhotonicError> {
    use phox_core::baselines::roofline::RooflinePlatform;
    let model = TransformerConfig::gpt2(128);
    let gen_tokens = 128;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "X7: autoregressive generation, GPT-2 prompt 128 → {gen_tokens} tokens"
    );
    // Two throughput columns, because "tokens/s" is ambiguous under
    // batching: tok/s/seq is what one user sees (decode step latency),
    // tok/s agg is what the machine delivers (batch × per-sequence).
    let _ = writeln!(
        out,
        "{:<24} {:>14} {:>14} {:>18}",
        "platform", "tok/s/seq", "tok/s agg", "mJ/token"
    );
    for batch in [1usize, 16] {
        let acc = TronAccelerator::new(TronConfig {
            batch,
            ..tron.config().clone()
        })?;
        let r = acc.simulate_generation(&model, gen_tokens)?;
        let _ = writeln!(
            out,
            "{:<24} {:>14.0} {:>14.0} {:>18.4}",
            format!("TRON (batch {batch})"),
            r.tokens_per_s,
            r.aggregate_tokens_per_s,
            r.energy_per_token_j * 1e3
        );
    }
    // GPU decode: bandwidth-bound weight re-streaming, amortised over
    // the batch (the standard LLM-serving roofline).
    let gpu = RooflinePlatform::v100();
    let weights = model.census().weight_bytes as f64;
    for batch in [1usize, 16] {
        let step_s = weights / (gpu.mem_bw_bytes_per_s * gpu.mem_efficiency);
        let tokens_per_s = 1.0 / step_s; // per sequence; batch shares the stream
        let energy_per_token = gpu.power_w * step_s / batch as f64;
        let _ = writeln!(
            out,
            "{:<24} {:>14.0} {:>14.0} {:>18.4}",
            format!("GPU V100 (batch {batch})"),
            tokens_per_s,
            tokens_per_s * batch as f64,
            energy_per_token * 1e3
        );
    }
    let _ = writeln!(
        out,
        "both platforms are decode-bandwidth-bound: the photonic compute advantage\nof prefill collapses to the memory-system ratio, while the energy advantage persists"
    );
    Ok(out)
}

/// X8: the §IV design choice, quantified — a coherent MZI mesh against
/// the non-coherent MR bank array at growing tile sizes. The mesh loses
/// on path loss, holding power, footprint and phase-precision at the
/// scales the accelerators need, which is why TRON and GHOST are
/// non-coherent (coherent summation is reserved for the add-only blocks).
///
/// # Errors
///
/// Propagates device-model failures.
pub fn coherent_table() -> Result<String, PhotonicError> {
    use phox_core::photonics::coherent::{compare, Mzi};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "X8: coherent MZI mesh vs non-coherent MR bank array (per NxN tile)"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "N", "MZIs", "MRs", "mesh mm^2", "array mm^2", "mesh W", "loss dB", "8-bit OK"
    );
    for n in [8usize, 16, 25, 32, 64] {
        let c = compare(n, Mzi::default(), &MrConfig::default())?;
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>8} {:>14.3} {:>14.3} {:>12.2} {:>12.1} {:>10}",
            c.n,
            c.mzi_count,
            c.mr_count,
            c.mzi_footprint_um2 / 1e6,
            c.mr_footprint_um2 / 1e6,
            c.mzi_power_w,
            c.mzi_path_loss_db,
            if c.mzi_supports_8_bits { "yes" } else { "no" }
        );
    }
    let _ = writeln!(
        out,
        "non-coherent MR arrays hold ~uW-scale EO tuning per ring and lose only the bus loss"
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_nonempty() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let fig8 = fig8_epb_tron(&tron).unwrap();
        assert_eq!(fig8.columns.len(), 4);
        assert_eq!(fig8.rows.len(), 8);
        assert!(fig8.render().contains("TRON"));
        let fig9 = fig9_gops_tron(&tron).unwrap();
        assert_eq!(fig9.rows.len(), 8);
        // In every column, TRON (row 0) has the lowest EPB and highest
        // GOPS.
        for col in 0..4 {
            let tron_epb = fig8.rows[0].1[col];
            let tron_gops = fig9.rows[0].1[col];
            for r in 1..8 {
                assert!(fig8.rows[r].1[col] > tron_epb);
                assert!(fig9.rows[r].1[col] < tron_gops);
            }
        }
    }

    #[test]
    fn ghost_figures_have_ten_platforms() {
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let fig10 = fig10_epb_ghost(&ghost).unwrap();
        assert_eq!(fig10.rows.len(), 10);
        assert_eq!(fig10.columns.len(), 4);
        let fig11 = fig11_gops_ghost(&ghost).unwrap();
        assert_eq!(fig11.rows.len(), 10);
    }

    #[test]
    fn figures_serialize_to_json() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let fig = fig8_epb_tron(&tron).unwrap();
        let json = fig.to_json();
        assert!(json.contains("\"title\""));
        assert!(json.contains("TRON"));
        // 8 platform rows, each rendered as one `["name", [...]]` entry.
        assert_eq!(json.matches("    [\"").count(), 8);
        // Structural sanity: balanced brackets and no bare NaN/Inf tokens.
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "unbalanced brackets in {json}"
        );
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn json_escaping_and_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(1.0), "1.0");
        assert_eq!(json_number(0.25), "0.25");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn fig3_contains_response_curve() {
        let s = fig3_mr_response().unwrap();
        assert!(s.contains("through-port"));
        assert!(s.contains("heterodyne"));
    }

    #[test]
    fn extension_tables_render() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let v = variation_table(&tron).unwrap();
        assert!(v.contains("ring yield"));
        let p = pcm_table().unwrap();
        assert!(p.contains("crossover"));
    }

    #[test]
    fn coherent_renders() {
        let s = coherent_table().unwrap();
        assert!(s.contains("X8") && s.contains("MZIs"));
    }

    #[test]
    fn generation_renders() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let s = generation_table(&tron).unwrap();
        assert!(s.contains("X7") && s.contains("tok/s/seq") && s.contains("tok/s agg"));
    }

    #[test]
    fn extension_sweeps_render() {
        let s = noise_robustness_table().unwrap();
        assert!(s.contains("X4"));
        let s = precision_table().unwrap();
        assert!(s.contains("X5"));
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let s = energy_breakdown(&tron, &ghost).unwrap();
        assert!(s.contains("X6"));
    }

    #[test]
    fn sweeps_render() {
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let s = sensitivity_sweeps(&tron, &ghost).unwrap();
        assert!(s.contains("X3a") && s.contains("X3b") && s.contains("X3c"));
    }

    #[test]
    fn ablations_render() {
        let s = ablate_tuning().unwrap();
        assert!(s.contains("TED"));
        let tron = TronAccelerator::new(TronConfig::default()).unwrap();
        let s = ablate_tron(&tron).unwrap();
        assert!(s.contains("saving"));
    }
}
