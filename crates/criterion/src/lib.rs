//! Vendored minimal wall-clock benchmark harness.
//!
//! Offline stand-in for the crates.io `criterion` crate, implementing the
//! subset the `phox-bench` benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is calibrated to a target measurement time and
//! reports mean / min wall-clock per iteration on stdout.
//!
//! The environment variable `CRITERION_TARGET_MS` overrides the per-bench
//! measurement budget (default 300 ms), which keeps CI runs short.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One benchmark measurement, exposed so harnesses can collect results.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier.
    pub name: String,
    /// Iterations measured.
    pub iterations: u64,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed iteration batch, nanoseconds per iteration.
    pub min_ns: f64,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    /// All measurements recorded so far, in execution order.
    pub measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(300);
        Criterion {
            target: Duration::from_millis(ms),
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.target = target;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            target: self.target,
            result: None,
        };
        f(&mut b);
        if let Some((iterations, total, min_batch_ns)) = b.result {
            let mean_ns = total.as_nanos() as f64 / iterations.max(1) as f64;
            let m = Measurement {
                name: name.to_owned(),
                iterations,
                mean_ns,
                min_ns: min_batch_ns,
            };
            println!(
                "bench {:<40} {:>14} /iter (min {:>14}, {} iters)",
                m.name,
                format_ns(m.mean_ns),
                format_ns(m.min_ns),
                m.iterations
            );
            self.measurements.push(m);
        }
        self
    }

    /// Opens a named group; member benches report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of benchmarks sharing a `group/` report prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<N, F>(&mut self, id: N, f: F) -> &mut Self
    where
        N: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group. Reporting is incremental, so this is a no-op kept
    /// for API compatibility.
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    target: Duration,
    result: Option<(u64, Duration, f64)>,
}

impl Bencher {
    /// Measures `f`, calibrating the iteration count to the measurement
    /// budget: one timed warmup iteration sizes the batches, then batches
    /// run until the budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + calibration probe.
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));

        // Batch size targeting ~1/10 of the budget per batch.
        let per_batch = (self.target.as_nanos() / 10 / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min_batch_ns = f64::INFINITY;
        while total < self.target {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let batch = start.elapsed();
            min_batch_ns = min_batch_ns.min(batch.as_nanos() as f64 / per_batch as f64);
            total += batch;
            iterations += per_batch;
            if iterations >= 100_000_000 {
                break;
            }
        }
        self.result = Some((iterations, total, min_batch_ns));
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_measurement() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        assert_eq!(c.measurements.len(), 1);
        let m = &c.measurements[0];
        assert_eq!(m.name, "noop_add");
        assert!(m.iterations > 0);
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns * 1.5);
    }

    #[test]
    fn benchmark_group_prefixes_names() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.bench_function("inner", |b| b.iter(|| black_box(3u32) * black_box(5)));
        g.finish();
        assert_eq!(c.measurements[0].name, "grp/inner");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).contains(" s"));
    }
}
