//! Device fault injection, end to end: every fault type runs through
//! both TRON and GHOST and either degrades gracefully — a finite output
//! with a quantified accuracy loss — or returns a typed, context-chained
//! error. Never a panic.

use phox::nn::datasets::{sbm, LabelledGraph};
use phox::nn::gnn::GnnModel;
use phox::nn::transformer::TransformerModel;
use phox::photonics::PhotonicError;
use phox::prelude::*;
use phox::tensor::stats;

fn tron_cfg() -> TronConfig {
    TronConfig::default()
}

fn ghost_cfg() -> GhostConfig {
    GhostConfig::default()
}

/// One plan per fault type, addressed to the given bank geometry. The
/// builders validate eagerly now, so a failure here is a test bug.
fn single_fault_plans(rows: usize, channels: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "stuck-at MR",
            FaultPlan::new(rows, channels).stuck_mr(3, 5, 0.25).unwrap(),
        ),
        (
            "thermal drift",
            FaultPlan::new(rows, channels).thermal_drift(1.5).unwrap(),
        ),
        (
            "dead ADC lane",
            FaultPlan::new(rows, channels).dead_adc_lane(7).unwrap(),
        ),
        (
            "laser droop",
            FaultPlan::new(rows, channels).laser_droop(3.0).unwrap(),
        ),
    ]
}

fn tiny_transformer(seed: u64) -> TransformerModel {
    TransformerModel::random(TransformerConfig::tiny(8), seed).unwrap()
}

fn small_graph_task() -> LabelledGraph {
    sbm(3, 8, 12, 0.5, 0.05, 71).unwrap()
}

#[test]
fn tron_degrades_gracefully_under_every_fault_type() {
    let cfg = tron_cfg();
    let model = tiny_transformer(21);
    let x = Prng::new(22).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x).unwrap();
    for (name, plan) in single_fault_plans(cfg.array_rows, cfg.array_channels) {
        let mut sim = TronFunctional::with_faults(&cfg, plan, 23)
            .unwrap_or_else(|e| panic!("{name}: construction failed: {e}"));
        let y = sim
            .forward(&model, &x)
            .unwrap_or_else(|e| panic!("{name}: forward failed: {e}"));
        let mut finite = true;
        for r in 0..y.rows() {
            for c in 0..y.cols() {
                finite &= y.get(r, c).is_finite();
            }
        }
        assert!(finite, "{name}: non-finite output");
        // Quantified accuracy loss: degraded, not destroyed.
        let err = stats::relative_error(&reference, &y);
        assert!(err.is_finite(), "{name}: error not measurable");
        assert!(err < 2.0, "{name}: fault destroyed the output, error {err}");
    }
}

#[test]
fn ghost_degrades_gracefully_under_every_fault_type() {
    let cfg = ghost_cfg();
    let task = small_graph_task();
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 12, 16, 3), 72).unwrap();
    let reference = model.forward(&task.graph, &task.features).unwrap();
    for (name, plan) in single_fault_plans(cfg.array_rows, cfg.array_channels) {
        let mut sim = GhostFunctional::with_faults(&cfg, plan, 73)
            .unwrap_or_else(|e| panic!("{name}: construction failed: {e}"));
        let y = sim
            .forward(&model, &task.graph, &task.features)
            .unwrap_or_else(|e| panic!("{name}: forward failed: {e}"));
        let mut finite = true;
        for r in 0..y.rows() {
            for c in 0..y.cols() {
                finite &= y.get(r, c).is_finite();
            }
        }
        assert!(finite, "{name}: non-finite output");
        let err = stats::relative_error(&reference, &y);
        assert!(err.is_finite(), "{name}: error not measurable");
        assert!(err < 2.0, "{name}: fault destroyed the output, error {err}");
    }
}

#[test]
fn empty_fault_plan_matches_the_unfaulted_simulator() {
    let cfg = tron_cfg();
    let model = tiny_transformer(31);
    let x = Prng::new(32).fill_normal(8, 32, 0.0, 1.0);
    let mut clean = TronFunctional::new(&cfg, 33).unwrap();
    let mut faulted =
        TronFunctional::with_faults(&cfg, FaultPlan::new(cfg.array_rows, cfg.array_channels), 33)
            .unwrap();
    assert_eq!(
        clean.forward(&model, &x).unwrap(),
        faulted.forward(&model, &x).unwrap(),
        "a nominal fault plan must not change the datapath"
    );
}

#[test]
fn faults_actually_change_the_output() {
    let cfg = tron_cfg();
    let model = tiny_transformer(41);
    let x = Prng::new(42).fill_normal(8, 32, 0.0, 1.0);
    let mut clean = TronFunctional::new(&cfg, 43).unwrap();
    let baseline = clean.forward(&model, &x).unwrap();
    let plan = FaultPlan::new(cfg.array_rows, cfg.array_channels)
        .stuck_mr(0, 0, 1.0)
        .and_then(|p| p.dead_adc_lane(1))
        .unwrap();
    let mut faulted = TronFunctional::with_faults(&cfg, plan, 43).unwrap();
    let degraded = faulted.forward(&model, &x).unwrap();
    assert_ne!(baseline, degraded, "injected faults must be observable");
}

#[test]
fn uncompensatable_faults_return_typed_chained_errors() {
    let tron = tron_cfg();
    let ghost = ghost_cfg();

    // Thermal drift beyond the TO tuning range.
    let drift = FaultPlan::new(tron.array_rows, tron.array_channels)
        .thermal_drift(10.0)
        .unwrap();
    let err = TronFunctional::with_faults(&tron, drift.clone(), 1).unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::TuningRangeExceeded { .. }
    ));
    assert!(std::error::Error::source(&err).is_some());

    let drift = FaultPlan::new(ghost.array_rows, ghost.array_channels)
        .thermal_drift(10.0)
        .unwrap();
    let err = GhostFunctional::with_faults(&ghost, drift, 1).unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::TuningRangeExceeded { .. }
    ));

    // Laser droop below the receiver's noise floor.
    let droop = FaultPlan::new(tron.array_rows, tron.array_channels)
        .laser_droop(90.0)
        .unwrap();
    let err = TronFunctional::with_faults(&tron, droop, 1).unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::SignalUndetectable { .. } | PhotonicError::PrecisionUnreachable { .. }
    ));

    let droop = FaultPlan::new(ghost.array_rows, ghost.array_channels)
        .laser_droop(90.0)
        .unwrap();
    let err = GhostFunctional::with_faults(&ghost, droop, 1).unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::SignalUndetectable { .. } | PhotonicError::PrecisionUnreachable { .. }
    ));
}

#[test]
fn out_of_geometry_plans_are_rejected_with_context() {
    let cfg = tron_cfg();
    // Plan built for a different array geometry.
    let wrong = FaultPlan::new(cfg.array_rows + 1, cfg.array_channels);
    let err = TronFunctional::with_faults(&cfg, wrong, 1).unwrap_err();
    assert!(err.to_string().contains("injecting device faults"), "{err}");
    assert!(std::error::Error::source(&err).is_some());

    // A stuck ring outside the arrays is rejected at build time now —
    // the plan never exists to be injected.
    let err = FaultPlan::new(cfg.array_rows, cfg.array_channels)
        .stuck_mr(cfg.array_rows, 0, 0.5)
        .unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::ValueOutOfRange { .. }
    ));

    // As is a duplicate cell address.
    let err = FaultPlan::new(cfg.array_rows, cfg.array_channels)
        .stuck_mr(1, 1, 0.5)
        .and_then(|p| p.stuck_mr(1, 1, 0.9))
        .unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::DuplicateFault { .. }
    ));
}

#[test]
fn drift_compensation_reports_tuning_power() {
    let cfg = tron_cfg();
    let plan = FaultPlan::new(cfg.array_rows, cfg.array_channels)
        .thermal_drift(1.5)
        .and_then(|p| p.validated())
        .unwrap();
    let impact = plan
        .impact(&cfg.mr, &cfg.tuning, &cfg.noise, cfg.adc.bits)
        .unwrap();
    assert!(
        impact.compensation_power_w > 0.0,
        "drift compensation must burn tuning power"
    );
    assert!(impact.weight_gain.is_finite() && impact.weight_gain > 0.0);
}

#[test]
fn fault_schedule_switches_mid_run_and_clears() {
    // A scheduled dead lane: identical to the clean simulator before
    // onset, observably different while active, identical again after
    // clearance — on matched noise-stream seeds.
    let cfg = tron_cfg();
    let model = tiny_transformer(61);
    let x = Prng::new(62).fill_normal(8, 32, 0.0, 1.0);
    let schedule = FaultSchedule::new(cfg.array_rows, cfg.array_channels)
        .schedule(1.0, 2.0, DeviceFault::DeadAdcLane { lane: 1 })
        .unwrap();
    let mut scheduled = TronFunctional::with_fault_schedule(&cfg, schedule, 63).unwrap();
    let mut clean = TronFunctional::new(&cfg, 63).unwrap();

    scheduled.advance_to(0.5).unwrap();
    assert_eq!(
        scheduled.forward(&model, &x).unwrap(),
        clean.forward(&model, &x).unwrap(),
        "before onset the schedule must be inert"
    );

    scheduled.advance_to(1.5).unwrap();
    assert_ne!(
        scheduled.forward(&model, &x).unwrap(),
        clean.forward(&model, &x).unwrap(),
        "inside the window the fault must be observable"
    );

    scheduled.advance_to(2.5).unwrap();
    assert_eq!(
        scheduled.forward(&model, &x).unwrap(),
        clean.forward(&model, &x).unwrap(),
        "after clearance the datapath must recover exactly"
    );
}

#[test]
fn ghost_fault_schedule_switches_mid_run() {
    let cfg = ghost_cfg();
    let task = small_graph_task();
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 12, 16, 3), 82).unwrap();
    let schedule = FaultSchedule::new(cfg.array_rows, cfg.array_channels)
        .schedule(1.0, f64::INFINITY, DeviceFault::DeadAdcLane { lane: 2 })
        .unwrap();
    let mut scheduled = GhostFunctional::with_fault_schedule(&cfg, schedule, 83).unwrap();
    let mut clean = GhostFunctional::new(&cfg, 83).unwrap();

    scheduled.advance_to(0.5).unwrap();
    assert_eq!(
        scheduled
            .forward(&model, &task.graph, &task.features)
            .unwrap(),
        clean.forward(&model, &task.graph, &task.features).unwrap(),
    );
    scheduled.advance_to(1.5).unwrap();
    assert_ne!(
        scheduled
            .forward(&model, &task.graph, &task.features)
            .unwrap(),
        clean.forward(&model, &task.graph, &task.features).unwrap(),
    );
}

#[test]
fn fatal_scheduled_fault_is_a_typed_error_mid_run_never_a_panic() {
    let cfg = tron_cfg();
    let schedule = FaultSchedule::new(cfg.array_rows, cfg.array_channels)
        .schedule(1.0, 2.0, DeviceFault::ThermalDrift { drift_nm: 10.0 })
        .unwrap();
    let mut sim = TronFunctional::with_fault_schedule(&cfg, schedule, 93).unwrap();
    // Before onset: fine.
    sim.advance_to(0.5).unwrap();
    // Inside the window the drift exceeds the tuning range — a typed,
    // chained error, not a panic.
    let err = sim.advance_to(1.5).unwrap_err();
    assert!(matches!(
        err.root_cause(),
        PhotonicError::TuningRangeExceeded { .. }
    ));
    assert!(std::error::Error::source(&err).is_some());
    // Non-finite model time is also a typed error.
    assert!(sim.advance_to(f64::NAN).is_err());
}

#[test]
fn random_schedule_drives_both_simulators_without_panicking() {
    // A seeded random schedule (severe faults included) never panics:
    // every advance_to either succeeds or returns a typed error.
    let cfg = tron_cfg();
    let schedule = FaultSchedule::random(
        0xD15EA5E,
        cfg.array_rows,
        cfg.array_channels,
        200.0, // arrivals/s of model time
        0.05,  // horizon, s
        5e-3,  // mean hold, s
        0.5,   // half the faults severe
    )
    .unwrap();
    assert!(!schedule.is_empty());
    let mut sim = TronFunctional::with_fault_schedule(&cfg, schedule, 103).unwrap();
    let mut outcomes = (0u32, 0u32);
    for step in 0..=100 {
        let t = step as f64 * 5e-4;
        match sim.advance_to(t) {
            Ok(()) => outcomes.0 += 1,
            Err(e) => {
                outcomes.1 += 1;
                // Every failure is typed and context-chained.
                assert!(
                    e.to_string().contains("advancing TRON fault schedule"),
                    "{e}"
                );
            }
        }
    }
    assert!(outcomes.0 > 0, "schedule must leave servable instants");
}

#[test]
fn droop_widens_the_error_distribution() {
    // The fault model's noise inflation is visible end to end: a drooped
    // laser produces a larger deviation from the digital reference than
    // the healthy datapath, on the same seeds.
    let cfg = tron_cfg();
    let model = tiny_transformer(51);
    let x = Prng::new(52).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x).unwrap();
    let mut healthy = TronFunctional::new(&cfg, 53).unwrap();
    let e_healthy = stats::relative_error(&reference, &healthy.forward(&model, &x).unwrap());
    let plan = FaultPlan::new(cfg.array_rows, cfg.array_channels)
        .laser_droop(6.0)
        .unwrap();
    let mut drooped = TronFunctional::with_faults(&cfg, plan, 53).unwrap();
    let e_drooped = stats::relative_error(&reference, &drooped.forward(&model, &x).unwrap());
    assert!(
        e_drooped > e_healthy,
        "droop must widen the error: healthy {e_healthy}, drooped {e_drooped}"
    );
}
