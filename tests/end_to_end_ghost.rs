//! End-to-end GHOST integration: functional photonic GNN inference over
//! real graphs vs the digital reference, plus physical behaviour of the
//! performance simulator and the §V.D optimization ablation.

use phox::nn::datasets::sbm;
use phox::nn::quant_eval;
use phox::prelude::*;
use phox::tensor::{ops, stats};

#[test]
fn functional_matches_reference_for_every_model_family() {
    let task = sbm(3, 10, 12, 0.5, 0.05, 41).unwrap();
    for kind in [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin, GnnKind::Gat] {
        let model = GnnModel::random(GnnConfig::two_layer(kind, 12, 16, 3), 42).unwrap();
        let reference = model.forward(&task.graph, &task.features).unwrap();
        let mut sim = GhostFunctional::new(&GhostConfig::default(), 43).unwrap();
        let photonic = sim.forward(&model, &task.graph, &task.features).unwrap();
        let err = stats::relative_error(&reference, &photonic);
        assert!(err < 0.4, "{kind}: analog error {err}");
        let agree = stats::accuracy(&ops::argmax_rows(&photonic), &ops::argmax_rows(&reference));
        assert!(agree >= 0.75, "{kind}: agreement {agree}");
    }
}

#[test]
fn quantization_claim_holds_on_community_graphs() {
    // E6 for GNNs: int8 accuracy comparable to full precision.
    let task = sbm(4, 10, 16, 0.5, 0.04, 51).unwrap();
    for kind in [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin, GnnKind::Gat] {
        let model = GnnModel::random(GnnConfig::two_layer(kind, 16, 32, 4), 52).unwrap();
        let r = quant_eval::evaluate_gnn(&model, &task).unwrap();
        assert!(r.is_comparable(0.1), "{kind}: {r:?}");
    }
}

#[test]
fn rmat_instantiated_graph_runs_through_functional_sim() {
    // A power-law graph (not SBM) with hubs — the irregularity GHOST's
    // balancing targets.
    let shape = GraphShape {
        name: "mini-rmat".into(),
        nodes: 128,
        edges: 1024,
        features: 8,
        classes: 4,
    };
    let graph = shape.instantiate(61).unwrap();
    let features = shape.random_features(62);
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 8, 16, 4), 63).unwrap();
    let mut sim = GhostFunctional::new(&GhostConfig::default(), 64).unwrap();
    let y = sim.forward(&model, &graph, &features).unwrap();
    assert_eq!(y.shape(), (128, 4));
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn perf_scales_with_graph_size() {
    let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
    let small = ghost
        .simulate(&GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        ))
        .unwrap();
    let large = ghost
        .simulate(&GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 500, 16, 3),
            GraphShape::pubmed(),
        ))
        .unwrap();
    // Pubmed has ~7x the nodes and ~8x the edges of Cora (smaller
    // features, but more total aggregation work).
    assert!(large.perf.latency_s > small.perf.latency_s * 0.5);
    assert!(large.perf.energy_j > 0.0 && small.perf.energy_j > 0.0);
}

#[test]
fn every_optimization_helps_somewhere() {
    let base = GhostConfig::default();
    let reddit = GnnWorkload::sampled(
        GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
        GraphShape::reddit(),
        25,
    );
    let all_on = GhostAccelerator::new(base.clone()).unwrap();
    let r_on = all_on.simulate(&reddit).unwrap();

    // Partitioning: large latency + energy effect on Reddit.
    let no_part = GhostAccelerator::new(GhostConfig {
        optimizations: Optimizations {
            partition: false,
            ..Optimizations::default()
        },
        ..base.clone()
    })
    .unwrap();
    let r = no_part.simulate(&reddit).unwrap();
    assert!(r.perf.latency_s > r_on.perf.latency_s * 1.5, "partitioning");
    assert!(r.perf.energy_j > r_on.perf.energy_j, "partitioning energy");

    // DAC sharing: energy effect.
    let no_dac = GhostAccelerator::new(GhostConfig {
        optimizations: Optimizations {
            dac_sharing: false,
            ..Optimizations::default()
        },
        ..base.clone()
    })
    .unwrap();
    let r = no_dac.simulate(&reddit).unwrap();
    assert!(r.perf.energy_j > r_on.perf.energy_j, "dac sharing");

    // Pipelining + balancing: compute-latency effects, visible on a
    // compute-bound workload (on-chip features).
    let cora = GnnWorkload::new(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
    );
    let r_cora_on = all_on.simulate(&cora).unwrap();
    let no_pipe = GhostAccelerator::new(GhostConfig {
        optimizations: Optimizations {
            pipelining: false,
            ..Optimizations::default()
        },
        ..base.clone()
    })
    .unwrap();
    let r = no_pipe.simulate(&cora).unwrap();
    assert!(
        r.latency.compute_s > r_cora_on.latency.compute_s,
        "pipelining"
    );
    let no_bal = GhostAccelerator::new(GhostConfig {
        optimizations: Optimizations {
            balancing: false,
            ..Optimizations::default()
        },
        ..base
    })
    .unwrap();
    assert!(
        no_bal.balance_factor(&cora) >= all_on.balance_factor(&cora),
        "balancing"
    );
}

#[test]
fn sampling_caps_effective_edges() {
    let w = GnnWorkload::sampled(
        GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
        GraphShape::reddit(),
        25,
    );
    assert_eq!(w.effective_edges(), 232_965 * 25);
    // Sampling never increases the edge count.
    let tiny = GnnWorkload::sampled(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
        10_000,
    );
    assert_eq!(tiny.effective_edges(), 10_556);
}

#[test]
fn partition_invariants_on_rmat_graph() {
    use phox::ghost::partition::Partition;
    let shape = GraphShape {
        name: "t".into(),
        nodes: 600,
        edges: 4_000,
        features: 8,
        classes: 2,
    };
    let g = shape.instantiate(71).unwrap();
    let p = Partition::new(&g, 64, 128).unwrap();
    // Every edge lands in exactly one block pair.
    assert_eq!(p.total_edges(), g.num_edges());
    // Block loads never exceed the full cross product.
    assert!(p.block_loads() <= p.output_blocks() * p.input_blocks());
    // Partitioned streaming never exceeds per-edge gather on this
    // (dense-ish) graph by construction of the min policy used in perf.
    assert!(p.streamed_feature_bytes(8) > 0);
}
