//! Observability regression tests: the trace must be deterministic, the
//! disabled path must be a true no-op, and the per-stage decomposition in
//! the trace must agree with the simulators' energy/latency ledgers over
//! the paper's evaluation workloads (Figs. 8–11).

use phox::prelude::*;
use phox::tensor::parallel;
use phox::trace::Kind;

/// The Fig. 8/9 Transformer workloads.
fn tron_workloads() -> Vec<TransformerConfig> {
    vec![
        TransformerConfig::bert_base(128),
        TransformerConfig::bert_large(128),
        TransformerConfig::gpt2(128),
        TransformerConfig::vit_b16(),
    ]
}

/// The Fig. 10/11 GNN workloads.
fn ghost_workloads() -> Vec<GnnWorkload> {
    vec![
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gin, 3703, 16, 6),
            GraphShape::citeseer(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gat, 500, 16, 3),
            GraphShape::pubmed(),
        ),
        GnnWorkload::sampled(
            GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
            GraphShape::reddit(),
            25,
        ),
    ]
}

/// A traced mix of every instrumented hot path: the parallel GEMM
/// kernel, the analog tile engine (via the functional simulator), and
/// both performance simulators.
fn traced_mix() -> String {
    let trace = Trace::new();
    phox::trace::with_installed(trace.clone(), || {
        let a = Prng::new(11).fill_normal(96, 64, 0.0, 1.0);
        let b = Prng::new(12).fill_normal(64, 80, 0.0, 1.0);
        let _ = a.matmul(&b).unwrap();

        let config = TronConfig::default();
        let model = TransformerModel::random(TransformerConfig::tiny(8), 7).unwrap();
        let x = Prng::new(8).fill_normal(8, 32, 0.0, 1.0);
        let mut sim = TronFunctional::new(&config, 9).unwrap();
        let _ = sim.forward(&model, &x).unwrap();

        let tron = TronAccelerator::new(config).unwrap();
        let _ = tron.simulate(&TransformerConfig::bert_base(128)).unwrap();
        let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
        let _ = ghost.simulate(&ghost_workloads()[0]).unwrap();
    });
    trace.export_jsonl()
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    let baseline = parallel::with_threads(1, traced_mix);
    for n in [2, 4] {
        let other = parallel::with_threads(n, traced_mix);
        assert_eq!(
            baseline, other,
            "JSONL trace differs between 1 and {n} worker threads"
        );
    }
}

#[test]
fn disabled_trace_changes_no_ledger_value() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
    let model = TransformerConfig::bert_base(128);
    let workload = &ghost_workloads()[0];

    // Tracing off. `with_installed` (rather than relying on the
    // process default) also serialises against the other tests in this
    // binary, so none of these runs record into a sibling test's trace.
    let (tron_plain, ghost_plain) = phox::trace::with_installed(Trace::disabled(), || {
        (
            tron.simulate(&model).unwrap(),
            ghost.simulate(workload).unwrap(),
        )
    });

    // Tracing on: every instrumented path records.
    let (tron_traced, ghost_traced) = phox::trace::with_installed(Trace::new(), || {
        (
            tron.simulate(&model).unwrap(),
            ghost.simulate(workload).unwrap(),
        )
    });

    assert_eq!(tron_plain, tron_traced);
    assert_eq!(ghost_plain, ghost_traced);
    // PartialEq on f64 admits -0.0 == 0.0; the headline scalars must
    // match bit for bit.
    assert_eq!(
        tron_plain.perf.energy_j.to_bits(),
        tron_traced.perf.energy_j.to_bits()
    );
    assert_eq!(
        tron_plain.perf.latency_s.to_bits(),
        tron_traced.perf.latency_s.to_bits()
    );
    assert_eq!(
        ghost_plain.perf.energy_j.to_bits(),
        ghost_traced.perf.energy_j.to_bits()
    );
    assert_eq!(
        ghost_plain.perf.latency_s.to_bits(),
        ghost_traced.perf.latency_s.to_bits()
    );
}

/// Relative error with a floor to keep 0-vs-0 well-defined.
fn rel_err(expected: f64, actual: f64) -> f64 {
    (expected - actual).abs() / expected.abs().max(f64::MIN_POSITIVE)
}

/// Sums the `stage/*` span energies on `track`.
fn stage_sum_j(trace: &Trace, track: &str) -> f64 {
    let mut sum = 0.0;
    let mut spans = 0;
    for e in trace.events() {
        if e.track != track || !e.name.starts_with("stage/") {
            continue;
        }
        if let Kind::Span {
            energy_j: Some(j), ..
        } = e.kind
        {
            sum += j;
            spans += 1;
        }
    }
    assert!(spans > 0, "no stage spans on track {track}");
    sum
}

#[test]
fn tron_stage_decomposition_matches_ledger_over_fig8_9_workloads() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    for model in tron_workloads() {
        let trace = Trace::new();
        let report = phox::trace::with_installed(trace.clone(), || tron.simulate(&model).unwrap());
        assert_eq!(report.perf.energy_j, report.energy.total_j());
        assert!(
            rel_err(report.perf.latency_s, report.latency.total_s()) <= 1e-9,
            "{}: latency ledger drifted from the reported latency",
            model.name
        );
        let sum = stage_sum_j(&trace, &format!("tron/{}", model.name));
        assert!(
            rel_err(report.perf.energy_j, sum) <= 1e-9,
            "{}: stage spans sum to {sum} J, ledger says {} J",
            model.name,
            report.perf.energy_j
        );
    }
}

#[test]
fn ghost_stage_decomposition_matches_ledger_over_fig10_11_workloads() {
    let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
    for workload in ghost_workloads() {
        let trace = Trace::new();
        let report =
            phox::trace::with_installed(trace.clone(), || ghost.simulate(&workload).unwrap());
        assert_eq!(report.perf.energy_j, report.energy.total_j());
        assert!(
            rel_err(report.perf.latency_s, report.latency.total_s()) <= 1e-9,
            "{}: latency ledger drifted from the reported latency",
            report.workload
        );
        let sum = stage_sum_j(&trace, &format!("ghost/{}", report.workload));
        assert!(
            rel_err(report.perf.energy_j, sum) <= 1e-9,
            "{}: stage spans sum to {sum} J, ledger says {} J",
            report.workload,
            report.perf.energy_j
        );
    }
}

#[test]
fn comparison_harness_records_one_span_per_platform() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let model = TransformerConfig::bert_base(128);
    let trace = Trace::new();
    let rows =
        phox::trace::with_installed(trace.clone(), || tron_comparison(&tron, &model).unwrap());
    let track = format!("compare/{}", model.name);
    let platform_spans: Vec<_> = trace
        .events()
        .into_iter()
        .filter(|e| e.track == track && e.name.starts_with("platform/"))
        .collect();
    assert_eq!(platform_spans.len(), rows.len());
    for row in &rows {
        let name = format!("platform/{}", row.platform);
        let span = platform_spans
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no span for {name}"));
        if let Kind::Span { dur_s, .. } = span.kind {
            assert_eq!(dur_s.to_bits(), row.latency_s.to_bits());
        } else {
            panic!("{name} is not a span");
        }
    }
}

#[test]
fn chrome_export_of_a_real_run_is_wellformed() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let trace = Trace::new();
    phox::trace::with_installed(trace.clone(), || {
        tron.simulate(&TransformerConfig::bert_base(128)).unwrap();
    });
    let chrome = trace.export_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with('}'));
    assert!(chrome.contains("\"thread_name\""));
    assert!(chrome.contains("\"stage/attention\""));
    // Chrome's JSON parser has no NaN/Inf literals; the writer must
    // never emit them.
    assert!(!chrome.contains("NaN") && !chrome.contains("inf"));
}
