//! Experiment E8: the paper's headline claims, regenerated end-to-end.
//!
//! > *"Our photonic hardware LLM accelerator exhibited at least 14×
//! > better throughput and 8× better energy efficiency compared to
//! > previously proposed Transformer accelerators. Our photonic graph
//! > processing accelerator showed a minimum of 10.2× throughput
//! > improvement and 3.8× better energy efficiency against
//! > state-of-the-art GNN accelerators."*
//!
//! Absolute numbers come from our substitute models (see DESIGN.md), so
//! the assertions check the claims with a small margin below the paper's
//! exact factors: the *shape* — photonics wins every comparison by large
//! factors of the reported order — is what must hold.

use phox::prelude::*;

fn tron() -> TronAccelerator {
    TronAccelerator::new(
        TronConfig::from_design_space(&SweepConfig::default()).expect("design space feasible"),
    )
    .expect("TRON construction")
}

fn ghost() -> GhostAccelerator {
    GhostAccelerator::new(
        GhostConfig::from_design_space(&SweepConfig::default()).expect("design space feasible"),
    )
    .expect("GHOST construction")
}

fn tron_workloads() -> Vec<TransformerConfig> {
    vec![
        TransformerConfig::bert_base(128),
        TransformerConfig::bert_large(128),
        TransformerConfig::gpt2(128),
        TransformerConfig::vit_b16(),
    ]
}

fn ghost_workloads() -> Vec<GnnWorkload> {
    vec![
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
            GraphShape::cora(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gin, 3703, 16, 6),
            GraphShape::citeseer(),
        ),
        GnnWorkload::new(
            GnnConfig::two_layer(GnnKind::Gat, 500, 16, 3),
            GraphShape::pubmed(),
        ),
        GnnWorkload::sampled(
            GnnConfig::two_layer(GnnKind::GraphSage, 602, 128, 41),
            GraphShape::reddit(),
            25,
        ),
    ]
}

#[test]
fn tron_headline_claims_hold() {
    let tron = tron();
    let mut all = Vec::new();
    for model in tron_workloads() {
        let rows = tron_comparison(&tron, &model).expect("comparison");
        all.push(claims(&rows).expect("claims"));
    }
    let agg = aggregate_claims(&all);
    // Paper: ≥14× throughput on average, ≥8× energy efficiency.
    let mean_speedup = all.iter().map(|c| c.min_speedup).sum::<f64>() / all.len() as f64;
    assert!(
        mean_speedup >= 13.0,
        "mean min-speedup {mean_speedup:.1}× (paper: ≥14×)"
    );
    assert!(
        agg.min_efficiency >= 8.0,
        "min efficiency {:.1}× (paper: ≥8×)",
        agg.min_efficiency
    );
    // And TRON never loses a single comparison.
    assert!(agg.min_speedup > 1.0);
}

#[test]
fn ghost_headline_claims_hold() {
    let ghost = ghost();
    let mut all = Vec::new();
    for w in ghost_workloads() {
        let rows = ghost_comparison(&ghost, &w).expect("comparison");
        all.push(claims(&rows).expect("claims"));
    }
    let agg = aggregate_claims(&all);
    // Paper: ≥10.2× throughput, ≥3.8× energy efficiency, as minima.
    assert!(
        agg.min_speedup >= 10.0,
        "min speedup {:.1}× (paper: ≥10.2×)",
        agg.min_speedup
    );
    assert!(
        agg.min_efficiency >= 3.8,
        "min efficiency {:.1}× (paper: ≥3.8×)",
        agg.min_efficiency
    );
}

#[test]
fn electronic_platform_ordering_is_preserved() {
    // Within the transformer suite the paper's figures show CPU as the
    // slowest platform and the GPU as the fastest electronic one.
    let tron = tron();
    let rows = tron_comparison(&tron, &TransformerConfig::bert_base(128)).expect("comparison");
    let find = |name: &str| {
        rows.iter()
            .find(|r| r.platform.contains(name))
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let gpu = find("V100");
    let cpu = find("Xeon");
    let fpga = find("FPGA_Acc1");
    assert!(gpu.gops > cpu.gops);
    assert!(gpu.gops > fpga.gops);
    // FPGA accelerators are slower but more energy-efficient than CPU.
    assert!(fpga.gops < cpu.gops || fpga.epb_j < cpu.epb_j);
}

#[test]
fn photonic_epb_is_sub_picojoule() {
    // The optical advantage the paper attributes the wins to: EPB well
    // below every electronic platform's pJ/bit range.
    let tron = tron();
    let r = tron
        .simulate(&TransformerConfig::bert_base(128))
        .expect("simulate");
    assert!(r.perf.epb_j() < 1e-12, "TRON EPB {} J/bit", r.perf.epb_j());

    let ghost = ghost();
    let w = GnnWorkload::new(
        GnnConfig::two_layer(GnnKind::Gcn, 1433, 16, 7),
        GraphShape::cora(),
    );
    let r = ghost.simulate(&w).expect("simulate");
    assert!(r.perf.epb_j() < 1e-12, "GHOST EPB {} J/bit", r.perf.epb_j());
}
