//! End-to-end TRON integration: the functional photonic datapath must
//! compute what the digital int8 reference computes, across model kinds
//! and sequence lengths, and the performance simulator must behave
//! physically (monotone scaling, bounded by peak).

use phox::nn::transformer::FfActivation;
use phox::prelude::*;
use phox::tensor::{ops, stats};

fn tiny(seq: usize) -> TransformerConfig {
    TransformerConfig::tiny(seq)
}

#[test]
fn functional_matches_digital_reference_across_seeds() {
    let config = TronConfig::default();
    for seed in [1u64, 2, 3] {
        let model = TransformerModel::random(tiny(8), seed).unwrap();
        let x = Prng::new(seed + 100).fill_normal(8, 32, 0.0, 1.0);
        let reference = model.forward_quantized(&x).unwrap();
        let mut sim = TronFunctional::new(&config, seed + 200).unwrap();
        let photonic = sim.forward(&model, &x).unwrap();
        let err = stats::relative_error(&reference, &photonic);
        assert!(err < 0.4, "seed {seed}: analog vs int8 error {err}");
    }
}

#[test]
fn functional_works_for_decoder_models() {
    let cfg = TransformerConfig {
        kind: phox::nn::transformer::TransformerKind::DecoderOnly,
        ..tiny(8)
    };
    let model = TransformerModel::random(cfg, 5).unwrap();
    let x = Prng::new(6).fill_normal(8, 32, 0.0, 1.0);
    let mut sim = TronFunctional::ideal(&TronConfig::default(), 7);
    let y = sim.forward(&model, &x).unwrap();
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn functional_works_with_gelu_ff() {
    let cfg = TransformerConfig {
        ff_activation: FfActivation::Gelu,
        ..tiny(8)
    };
    let model = TransformerModel::random(cfg, 8).unwrap();
    let x = Prng::new(9).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x).unwrap();
    let mut sim = TronFunctional::new(&TronConfig::default(), 10).unwrap();
    let photonic = sim.forward(&model, &x).unwrap();
    assert!(stats::relative_error(&reference, &photonic) < 0.4);
}

#[test]
fn classification_agreement_between_analog_and_digital() {
    // On a separable task, analog TRON must classify like the digital
    // model (the operational meaning of "8-bit accuracy comparable to
    // fp32" on photonic hardware).
    let model = TransformerModel::random(tiny(8), 11).unwrap();
    let task = phox::nn::datasets::labelled_sequences(16, 4, 8, 32, 12).unwrap();
    let mut sim = TronFunctional::new(&TronConfig::default(), 13).unwrap();
    let mut agree = 0;
    for x in &task.inputs {
        let d = model.forward(x).unwrap();
        let a = sim.forward(&model, x).unwrap();
        // Compare mean-pooled class responses.
        let dm = ops::argmax_rows(&mean_pool(&d));
        let am = ops::argmax_rows(&mean_pool(&a));
        if dm == am {
            agree += 1;
        }
    }
    assert!(agree >= 13, "agreement {agree}/16");
}

fn mean_pool(x: &Matrix) -> Matrix {
    let mut m = Matrix::zeros(1, x.cols());
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            m.set(0, c, m.get(0, c) + x.get(r, c) / x.rows() as f64);
        }
    }
    m
}

#[test]
fn perf_scales_with_sequence_length() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let short = tron.simulate(&TransformerConfig::bert_base(128)).unwrap();
    let long = tron.simulate(&TransformerConfig::bert_base(512)).unwrap();
    assert!(long.perf.latency_s > short.perf.latency_s * 3.0);
    assert!(long.perf.energy_j > short.perf.energy_j * 3.0);
}

#[test]
fn throughput_bounded_by_peak() {
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let peak_gops = tron.config().peak_macs_per_s() * 2.0 / 1e9;
    for m in [
        TransformerConfig::bert_base(128),
        TransformerConfig::bert_large(256),
        TransformerConfig::gpt2(512),
        TransformerConfig::vit_b16(),
    ] {
        let r = tron.simulate(&m).unwrap();
        assert!(
            r.perf.gops() <= peak_gops,
            "{}: {} GOPS exceeds peak {peak_gops}",
            m.name,
            r.perf.gops()
        );
    }
}

#[test]
fn design_space_config_outperforms_default() {
    let default = TronAccelerator::new(TronConfig::default()).unwrap();
    let optimised =
        TronAccelerator::new(TronConfig::from_design_space(&SweepConfig::default()).unwrap())
            .unwrap();
    let model = TransformerConfig::bert_base(128);
    let rd = default.simulate(&model).unwrap();
    let ro = optimised.simulate(&model).unwrap();
    assert!(
        ro.perf.gops() > rd.perf.gops(),
        "optimised {} vs default {}",
        ro.perf.gops(),
        rd.perf.gops()
    );
}

#[test]
fn eq3_decomposition_covers_attention_macs() {
    // The decomposition Q·Kᵀ = (Q·W_Kᵀ)·Xᵀ must not change the MAC
    // census — only remove the digital transpose.
    let model = TransformerConfig::bert_base(128);
    let matmuls = phox::tron::perf::TronAccelerator::layer_matmuls(&model);
    let macs: u64 = matmuls
        .iter()
        .map(|(s, _, _)| (s.m * s.k * s.n) as u64)
        .sum();
    assert_eq!(macs * model.layers as u64, model.census().macs);
}

#[test]
fn laser_budget_failure_is_typed() {
    // A hopeless laser should produce LaserBudgetExceeded, not a panic.
    let config = TronConfig {
        laser: phox::photonics::link::Laser {
            max_power_per_channel_dbm: -30.0,
            wall_plug_efficiency: 0.2,
        },
        ..TronConfig::default()
    };
    match TronAccelerator::new(config) {
        Err(PhotonicError::LaserBudgetExceeded { .. }) => {}
        other => panic!("expected LaserBudgetExceeded, got {other:?}"),
    }
}
