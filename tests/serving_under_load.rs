//! End-to-end serving-under-load integration: the phox-serve engine
//! driving the real TRON/GHOST cost models through the facade crate.

use phox::prelude::*;
use phox::tensor::parallel::with_threads;
use phox::trace;

fn mix() -> Vec<ServiceClass> {
    let tron = TronAccelerator::new(TronConfig::default()).expect("TRON config");
    let ghost = GhostAccelerator::new(GhostConfig::default()).expect("GHOST config");
    standard_mix(&tron, &ghost).expect("standard mix")
}

fn run_at(rate_hz: f64) -> ServeReport {
    let config = ServeConfig {
        arrival_rate_hz: rate_hz,
        duration_s: 0.05,
        ..ServeConfig::default()
    };
    ServeEngine::new(config, mix())
        .expect("engine")
        .run()
        .expect("run")
}

#[test]
fn batching_amortises_residency_across_the_load_sweep() {
    let mut last_occupancy = 0.0;
    let mut last_jpr = f64::INFINITY;
    for rate in [500.0, 2_000.0, 8_000.0, 32_000.0] {
        let report = run_at(rate);
        assert_eq!(report.admitted + report.rejected, report.arrivals);
        assert_eq!(report.completed, report.admitted);
        assert!(
            report.mean_occupancy >= last_occupancy,
            "occupancy fell from {last_occupancy} to {} at {rate} req/s",
            report.mean_occupancy
        );
        assert!(
            report.joules_per_request <= last_jpr,
            "joules/request rose from {last_jpr} to {} at {rate} req/s",
            report.joules_per_request
        );
        assert!(report.p99_latency_s >= report.p50_latency_s);
        last_occupancy = report.mean_occupancy;
        last_jpr = report.joules_per_request;
    }
}

#[test]
fn saturated_engine_rejects_but_conserves() {
    let report = run_at(32_000.0);
    assert!(report.rejected > 0, "32 kreq/s must overload the engine");
    assert_eq!(report.admitted + report.rejected, report.arrivals);
    assert_eq!(report.completed, report.admitted);
    // Near saturation the windows run essentially full.
    assert!(report.mean_occupancy > 12.0, "{}", report.mean_occupancy);
}

#[test]
fn serving_report_is_thread_invariant() {
    let baseline = with_threads(1, || run_at(4_000.0).to_json());
    for threads in [2usize, 4, 8] {
        let json = with_threads(threads, || run_at(4_000.0).to_json());
        assert_eq!(baseline, json, "report diverged at {threads} threads");
    }
}

#[test]
fn serving_run_is_fully_observable() {
    let handle = trace::Trace::new();
    let report = trace::with_installed(handle.clone(), || run_at(4_000.0));
    let jsonl = handle.export_jsonl();
    assert!(jsonl.contains("\"type\":\"sample\""));
    assert!(jsonl.contains("queue_depth"));
    assert!(jsonl.contains("batch_occupancy"));
    let occupancy_samples = handle
        .events()
        .iter()
        .filter(|e| e.track == "serve" && e.name == "batch_occupancy")
        .count() as u64;
    assert_eq!(occupancy_samples, report.windows);
    // The Chrome export renders the series as counter events.
    assert!(handle.export_chrome().contains("\"ph\":\"C\""));
}
