//! The other §III graph tasks — link prediction and graph
//! classification — run end-to-end through GHOST's *photonic* datapath
//! and must agree with the digital reference.

use phox::nn::tasks::{
    edge_score, graph_classification_accuracy, graph_classification_task, link_prediction,
    mean_pool,
};
use phox::prelude::*;

#[test]
fn photonic_link_prediction_matches_digital() {
    let task = phox::nn::datasets::sbm(3, 12, 16, 0.5, 0.02, 121).unwrap();
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 16, 32, 8), 122).unwrap();

    // Digital AUC.
    let digital = link_prediction(&model, &task.graph, &task.features, 300, 123).unwrap();
    assert!(digital.auc > 0.6, "digital AUC {}", digital.auc);

    // Photonic embeddings, same decoder.
    let mut sim = GhostFunctional::new(&GhostConfig::default(), 124).unwrap();
    let photonic_emb = sim.forward(&model, &task.graph, &task.features).unwrap();
    let digital_emb = model.forward(&task.graph, &task.features).unwrap();

    // Edge scores from the two datapaths must correlate: check that for
    // a sample of edges, the photonic score is close to the digital one.
    let mut rng = Prng::new(125);
    let mut agree = 0;
    let n = task.graph.num_nodes();
    let trials = 100;
    for _ in 0..trials {
        let u = rng.next_index(n);
        let v = rng.next_index(n);
        if u == v {
            agree += 1; // degenerate pair, scores trivially equal rank
            continue;
        }
        let a = rng.next_index(n);
        let b = rng.next_index(n);
        if a == b {
            agree += 1;
            continue;
        }
        let d_order = edge_score(&digital_emb, u, v) > edge_score(&digital_emb, a, b);
        let p_order = edge_score(&photonic_emb, u, v) > edge_score(&photonic_emb, a, b);
        if d_order == p_order {
            agree += 1;
        }
    }
    assert!(agree >= 85, "ranking agreement {agree}/{trials}");
}

#[test]
fn photonic_graph_classification_matches_digital() {
    let task = graph_classification_task(5, 131).unwrap();
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gin, 8, 16, 4), 132).unwrap();

    let digital_acc = graph_classification_accuracy(&model, &task).unwrap();
    assert!(digital_acc >= 0.7, "digital accuracy {digital_acc}");

    // Photonic path: embed each graph through GHOST, pool, and check the
    // pooled read-outs stay close to the digital ones.
    let mut sim = GhostFunctional::new(&GhostConfig::default(), 133).unwrap();
    let mut max_rel = 0.0f64;
    for (graph, features) in &task.graphs {
        let d = model.forward(graph, features).unwrap();
        let p = sim.forward(&model, graph, features).unwrap();
        let dp = mean_pool(&d);
        let pp = mean_pool(&p);
        let num: f64 = dp
            .iter()
            .zip(&pp)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt();
        let den: f64 = dp.iter().map(|a| a * a).sum::<f64>().sqrt().max(1e-9);
        max_rel = max_rel.max(num / den);
    }
    assert!(max_rel < 0.25, "pooled read-out divergence {max_rel}");
}

#[test]
fn ghost_perf_covers_task_workloads() {
    // Link prediction and graph classification reuse the same
    // aggregate/combine/update pipeline; the performance simulator must
    // accept their (deeper-embedding) configurations.
    let ghost = GhostAccelerator::new(GhostConfig::default()).unwrap();
    let w = GnnWorkload::new(
        GnnConfig {
            kind: GnnKind::Gcn,
            dims: vec![500, 64, 32], // embedding head for link prediction
            aggregation: Aggregation::Mean,
        },
        GraphShape::pubmed(),
    );
    let r = ghost.simulate(&w).unwrap();
    assert!(r.perf.gops() > 0.0);
}
