//! Cross-crate photonics integration: the device stack must compose —
//! design-space points must actually be realisable by the bank/link/noise
//! models they were validated against.

use phox::photonics::bank::MrBankArray;
use phox::photonics::converter::{Adc, Dac};
use phox::photonics::crosstalk::HeterodyneAnalysis;
use phox::photonics::design_space::{sweep, SweepConfig};
use phox::photonics::link::{Laser, WdmLink};
use phox::photonics::noise::NoiseBudget;
use phox::photonics::tuning::HybridTuning;
use phox::prelude::*;

#[test]
fn every_feasible_design_point_is_realisable() {
    let outcome = sweep(&SweepConfig::default()).unwrap();
    for p in outcome.feasible.iter().take(20) {
        // The crosstalk analysis reconstructs.
        let het = HeterodyneAnalysis::new(&p.mr, p.channels, p.spacing_nm).unwrap();
        assert!(het.supports_bits(8), "point {p:?}");
        // The noise budget with that crosstalk reaches 8 bits.
        let nb = NoiseBudget {
            crosstalk_ratio: p.heterodyne_crosstalk,
            ..NoiseBudget::default()
        };
        let rx = nb.required_power_w(8).unwrap();
        assert!(nb.supports_bits(rx * 1.001, 8));
        // The laser can actually drive a full bank of this geometry.
        let link = WdmLink {
            channels: p.channels,
            through_mrs: p.channels,
            ..WdmLink::default()
        };
        assert!(Laser::default().provision(&link, rx).is_ok());
    }
}

#[test]
fn best_design_point_drives_a_real_bank_array() {
    let outcome = sweep(&SweepConfig::default()).unwrap();
    let best = outcome.best().unwrap();
    let array = MrBankArray::new(best.mr, HybridTuning::default(), 4, best.channels).unwrap();
    let mut rng = Prng::new(1);
    let weights = Matrix::filled(4, best.channels, 0.5);
    let acts = vec![0.5; best.channels];
    let result = array
        .evaluate(
            &weights,
            &acts,
            &Dac::default(),
            &Adc::default(),
            1e-3,
            &mut rng,
        )
        .unwrap();
    let expected = best.channels as f64 * 0.25;
    for v in &result.values {
        assert!((v - expected).abs() < expected * 0.1, "{v} vs {expected}");
    }
}

#[test]
fn noise_budget_bits_are_monotone_in_power() {
    let nb = NoiseBudget::default();
    let mut last_enob = 0.0;
    for dbm in [-18.0, -12.0, -6.0, 0.0, 6.0] {
        let w = phox::photonics::constants::dbm_to_watts(dbm);
        let r = nb.evaluate(w).unwrap();
        assert!(r.enob >= last_enob, "ENOB must grow with power");
        last_enob = r.enob;
    }
}

#[test]
fn tron_and_ghost_share_the_same_feasible_physics() {
    // Both accelerators built from the same design point must provision
    // lasers successfully and report consistent per-array power.
    let sweep_cfg = SweepConfig::default();
    let tron = TronAccelerator::new(TronConfig::from_design_space(&sweep_cfg).unwrap()).unwrap();
    let ghost = GhostAccelerator::new(GhostConfig::from_design_space(&sweep_cfg).unwrap()).unwrap();
    assert!(tron.array_laser_w() > 0.0);
    assert!(ghost.array_laser_w() > 0.0);
    // Same channels, same rings -> per-waveguide power within 2x
    // (row counts differ).
    let tron_per_row = tron.array_laser_w() / tron.config().array_rows as f64;
    let ghost_per_row = ghost.array_laser_w() / ghost.config().array_rows as f64;
    let ratio = tron_per_row / ghost_per_row;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn infeasible_designs_fail_with_typed_errors() {
    // 16-bit precision is beyond these devices.
    let config = SweepConfig {
        bits: 16,
        ..SweepConfig::default()
    };
    assert!(matches!(
        sweep(&config),
        Err(PhotonicError::NoFeasibleDesign { .. })
    ));
}
