//! Error types across the workspace must be well-behaved (C-GOOD-ERR):
//! std::error::Error + Send + Sync, with informative lowercase Display
//! messages that carry the numbers a user needs to act.

use phox::prelude::*;

fn assert_good_error<E: std::error::Error + Send + Sync + 'static>(_: &E) {}

#[test]
fn photonic_errors_render_informative_messages() {
    let e = PhotonicError::TuningRangeExceeded {
        required_nm: 2.5,
        available_nm: 1.0,
    };
    assert_good_error(&e);
    let msg = e.to_string();
    assert!(msg.contains("2.5"));
    assert!(msg.contains("1.0"));

    let e = PhotonicError::LaserBudgetExceeded {
        required_dbm: 14.2,
        available_dbm: 10.0,
    };
    assert!(e.to_string().contains("14.2"));

    let e = PhotonicError::PrecisionUnreachable {
        target_bits: 8,
        achieved_bits: 6.4,
    };
    assert!(e.to_string().contains('8'));
    assert!(e.to_string().contains("6.4"));

    let e = PhotonicError::NoFeasibleDesign { examined: 480 };
    assert!(e.to_string().contains("480"));

    let e = PhotonicError::FsrExceeded {
        required_nm: 40.0,
        fsr_nm: 18.2,
    };
    assert!(e.to_string().contains("18.2"));
}

#[test]
fn tensor_errors_render_shapes() {
    use phox::tensor::TensorError;
    let e = TensorError::ShapeMismatch {
        lhs: (3, 4),
        rhs: (5, 6),
    };
    assert_good_error(&e);
    let msg = e.to_string();
    assert!(msg.contains("3x4") && msg.contains("5x6"));

    let e = TensorError::LengthMismatch {
        expected: 12,
        actual: 11,
    };
    assert!(e.to_string().contains("12") && e.to_string().contains("11"));
}

#[test]
fn memory_errors_name_the_buffer() {
    use phox::memsim::MemError;
    let e = MemError::UnknownBuffer {
        name: "weights".into(),
    };
    assert_good_error(&e);
    assert!(e.to_string().contains("weights"));
}

#[test]
fn errors_start_lowercase_without_trailing_punctuation() {
    let messages = [
        PhotonicError::InvalidConfig { what: "x" }.to_string(),
        PhotonicError::NoFeasibleDesign { examined: 1 }.to_string(),
        phox::tensor::TensorError::NotSymmetric.to_string(),
        phox::memsim::MemError::InvalidConfig { what: "x" }.to_string(),
        phox::arch::ArchError::InvalidMetric { what: "x" }.to_string(),
        phox::baselines::BaselineError::InvalidWorkload { what: "x" }.to_string(),
    ];
    for m in messages {
        let first = m.chars().next().expect("non-empty message");
        assert!(first.is_lowercase(), "message should start lowercase: {m}");
        assert!(!m.ends_with('.'), "no trailing period: {m}");
    }
}

#[test]
fn error_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhotonicError>();
    assert_send_sync::<phox::tensor::TensorError>();
    assert_send_sync::<phox::memsim::MemError>();
    assert_send_sync::<phox::arch::ArchError>();
    assert_send_sync::<phox::baselines::BaselineError>();
}
