//! Error types across the workspace must be well-behaved (C-GOOD-ERR):
//! std::error::Error + Send + Sync, with informative lowercase Display
//! messages that carry the numbers a user needs to act.

use phox::prelude::*;

fn assert_good_error<E: std::error::Error + Send + Sync + 'static>(_: &E) {}

#[test]
fn photonic_errors_render_informative_messages() {
    let e = PhotonicError::TuningRangeExceeded {
        required_nm: 2.5,
        available_nm: 1.0,
    };
    assert_good_error(&e);
    let msg = e.to_string();
    assert!(msg.contains("2.5"));
    assert!(msg.contains("1.0"));

    let e = PhotonicError::LaserBudgetExceeded {
        required_dbm: 14.2,
        available_dbm: 10.0,
    };
    assert!(e.to_string().contains("14.2"));

    let e = PhotonicError::PrecisionUnreachable {
        target_bits: 8,
        achieved_bits: 6.4,
    };
    assert!(e.to_string().contains('8'));
    assert!(e.to_string().contains("6.4"));

    let e = PhotonicError::NoFeasibleDesign { examined: 480 };
    assert!(e.to_string().contains("480"));

    let e = PhotonicError::FsrExceeded {
        required_nm: 40.0,
        fsr_nm: 18.2,
    };
    assert!(e.to_string().contains("18.2"));
}

#[test]
fn tensor_errors_render_shapes() {
    use phox::tensor::TensorError;
    let e = TensorError::ShapeMismatch {
        lhs: (3, 4),
        rhs: (5, 6),
    };
    assert_good_error(&e);
    let msg = e.to_string();
    assert!(msg.contains("3x4") && msg.contains("5x6"));

    let e = TensorError::LengthMismatch {
        expected: 12,
        actual: 11,
    };
    assert!(e.to_string().contains("12") && e.to_string().contains("11"));
}

#[test]
fn memory_errors_name_the_buffer() {
    use phox::memsim::MemError;
    let e = MemError::UnknownBuffer {
        name: "weights".into(),
    };
    assert_good_error(&e);
    assert!(e.to_string().contains("weights"));
}

#[test]
fn errors_start_lowercase_without_trailing_punctuation() {
    let messages = [
        PhotonicError::InvalidConfig { what: "x" }.to_string(),
        PhotonicError::NoFeasibleDesign { examined: 1 }.to_string(),
        phox::tensor::TensorError::NotSymmetric.to_string(),
        phox::memsim::MemError::InvalidConfig { what: "x" }.to_string(),
        phox::arch::ArchError::InvalidMetric { what: "x" }.to_string(),
        phox::baselines::BaselineError::InvalidWorkload { what: "x" }.to_string(),
    ];
    for m in messages {
        let first = m.chars().next().expect("non-empty message");
        assert!(first.is_lowercase(), "message should start lowercase: {m}");
        assert!(!m.ends_with('.'), "no trailing period: {m}");
    }
}

#[test]
fn error_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PhotonicError>();
    assert_send_sync::<phox::tensor::TensorError>();
    assert_send_sync::<phox::memsim::MemError>();
    assert_send_sync::<phox::arch::ArchError>();
    assert_send_sync::<phox::baselines::BaselineError>();
}

#[test]
fn context_chains_expose_their_source() {
    let root = PhotonicError::TuningRangeExceeded {
        required_nm: 2.5,
        available_nm: 1.0,
    };
    let chained = root
        .clone()
        .ctx("compensating thermal drift")
        .ctx("building the weight bank");
    // Display renders outermost stage first, root cause last.
    let msg = chained.to_string();
    assert!(
        msg.starts_with("building the weight bank: compensating thermal drift:"),
        "{msg}"
    );
    assert!(msg.contains("2.5"), "root numbers must survive: {msg}");
    // source() walks exactly one level; root_cause() walks them all.
    let src = std::error::Error::source(&chained).expect("chained error exposes a source");
    assert!(src.to_string().starts_with("compensating thermal drift:"));
    assert_eq!(chained.root_cause(), &root);
    assert_good_error(&chained);
}

#[test]
fn result_ctx_helper_converts_and_wraps() {
    // A tensor-layer failure annotated through the Ctx extension trait
    // keeps the upstream shape detail.
    let shapes: Result<(), phox::tensor::TensorError> =
        Err(phox::tensor::TensorError::ShapeMismatch {
            lhs: (3, 4),
            rhs: (5, 6),
        });
    let err = shapes.ctx("coherent residual add").unwrap_err();
    assert!(std::error::Error::source(&err).is_some());
    let msg = err.to_string();
    assert!(msg.contains("coherent residual add"), "{msg}");
    assert!(msg.contains("3x4"), "upstream detail erased: {msg}");
    assert!(matches!(
        err.root_cause(),
        PhotonicError::Upstream {
            subsystem: "tensor",
            ..
        }
    ));
}

#[test]
fn wrapped_failures_never_render_the_generic_baseline_message() {
    // A laser too weak for the provisioned link must surface the real
    // device-physics failure through TRON's constructor, not a generic
    // "baseline evaluation failed" or bare "invalid configuration".
    let weak_laser = phox::photonics::link::Laser {
        max_power_per_channel_dbm: -40.0,
        ..phox::photonics::link::Laser::default()
    };
    let cfg = TronConfig {
        laser: weak_laser,
        ..TronConfig::default()
    };
    let err = TronAccelerator::new(cfg).unwrap_err();
    let msg = err.to_string();
    assert!(
        !msg.contains("baseline evaluation failed"),
        "cause was swallowed: {msg}"
    );
    assert!(
        msg.contains("dBm") || msg.contains("laser") || msg.contains("power"),
        "device-physics detail missing: {msg}"
    );
}

#[test]
fn baseline_failures_name_the_failing_baseline() {
    // An empty workload makes every baseline reject; the comparison
    // harness must preserve which baseline and why.
    let tron = TronAccelerator::new(TronConfig::default()).unwrap();
    let degenerate = TransformerConfig {
        layers: 0,
        ..TransformerConfig::tiny(8)
    };
    match tron_comparison(&tron, &degenerate) {
        Ok(_) => {} // degenerate workloads may still evaluate; fine
        Err(e) => {
            let msg = e.to_string();
            assert!(
                !msg.contains("baseline evaluation failed"),
                "generic message swallowed the cause: {msg}"
            );
        }
    }
}

#[test]
fn sweep_rejections_preserve_root_causes() {
    use phox::photonics::design_space::sweep;
    let outcome = sweep(&SweepConfig::default()).unwrap();
    let mut saw_exemplar = false;
    for reason in RejectionReason::ALL {
        if let Some(cause) = outcome.rejections.exemplar(reason) {
            saw_exemplar = true;
            // Every exemplar is a chained error bottoming out in device
            // physics, not a sentinel code.
            assert!(
                std::error::Error::source(cause).is_some(),
                "{reason}: exemplar has no source: {cause}"
            );
        }
    }
    assert!(saw_exemplar, "default sweep rejects at least one candidate");
}
