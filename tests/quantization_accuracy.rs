//! Experiment E6: "employing 8-bit model quantization yields algorithmic
//! accuracy comparable to models utilizing full (32-bit) precision"
//! (§VI) — reproduced across both model families and extended to the
//! analog photonic datapath (digital fp ≈ digital int8 ≈ analog
//! photonic).

use phox::nn::datasets::{labelled_sequences, sbm};
use phox::nn::quant_eval::{evaluate_gnn, evaluate_transformer};
use phox::prelude::*;
use phox::tensor::{ops, stats};

#[test]
fn transformer_int8_is_comparable_on_sequence_tasks() {
    let task = labelled_sequences(20, 4, 8, 32, 91).unwrap();
    let model = TransformerModel::random(TransformerConfig::tiny(8), 92).unwrap();
    let r = evaluate_transformer(&model, &task).unwrap();
    assert!(r.is_comparable(0.15), "{r:?}");
    assert!(r.agreement >= 0.85, "agreement {}", r.agreement);
    assert!(r.mean_relative_error < 0.2);
}

#[test]
fn gnn_int8_is_comparable_for_every_family() {
    let task = sbm(3, 12, 16, 0.5, 0.05, 93).unwrap();
    for kind in [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin, GnnKind::Gat] {
        let model = GnnModel::random(GnnConfig::two_layer(kind, 16, 32, 3), 94).unwrap();
        let r = evaluate_gnn(&model, &task).unwrap();
        assert!(r.is_comparable(0.1), "{kind}: {r:?}");
        assert!(r.agreement >= 0.9, "{kind}: agreement {}", r.agreement);
    }
}

#[test]
fn analog_chain_adds_no_more_error_than_quantization_itself() {
    // fp64 → int8 error should dominate int8 → analog error: the
    // photonic datapath is engineered (ENOB ≥ 8) so the analog chain
    // sits inside the quantization noise floor.
    let model = TransformerModel::random(TransformerConfig::tiny(8), 95).unwrap();
    let x = Prng::new(96).fill_normal(8, 32, 0.0, 1.0);
    let fp = model.forward(&x).unwrap();
    let int8 = model.forward_quantized(&x).unwrap();
    let mut sim = TronFunctional::new(&TronConfig::default(), 97).unwrap();
    let analog = sim.forward(&model, &x).unwrap();

    let q_err = stats::relative_error(&fp, &int8);
    let a_err = stats::relative_error(&int8, &analog);
    // Same order of magnitude: analog error within ~6x of pure
    // quantization error (both are small).
    assert!(
        a_err < q_err * 6.0 + 0.05,
        "analog err {a_err} vs quant err {q_err}"
    );
}

#[test]
fn end_to_end_classification_survives_the_full_photonic_chain() {
    // SBM community detection: digital fp, digital int8 and analog
    // photonic GHOST must all classify (mostly) identically.
    let task = sbm(3, 10, 12, 0.6, 0.03, 98).unwrap();
    let model = GnnModel::random(GnnConfig::two_layer(GnnKind::Gcn, 12, 24, 3), 99).unwrap();

    let fp = model.forward(&task.graph, &task.features).unwrap();
    let int8 = model
        .forward_quantized(&task.graph, &task.features)
        .unwrap();
    let mut sim = GhostFunctional::new(&GhostConfig::default(), 100).unwrap();
    let analog = sim.forward(&model, &task.graph, &task.features).unwrap();

    let fp_pred = ops::argmax_rows(&fp);
    let int8_pred = ops::argmax_rows(&int8);
    let analog_pred = ops::argmax_rows(&analog);

    assert!(stats::accuracy(&int8_pred, &fp_pred) >= 0.9);
    assert!(stats::accuracy(&analog_pred, &fp_pred) >= 0.8);
}

#[test]
fn noise_injection_degrades_gracefully_not_catastrophically() {
    // Failure-injection: even at 10x the provisioned receiver noise the
    // analog output stays finite and correlated with the reference.
    use phox::photonics::analog::AnalogEngine;
    let model = TransformerModel::random(TransformerConfig::tiny(8), 101).unwrap();
    let x = Prng::new(102).fill_normal(8, 32, 0.0, 1.0);
    let reference = model.forward(&x).unwrap();

    let mut noisy_engine = AnalogEngine::new(2e-2, 8, 8, 103).unwrap();
    let y = noisy_engine.matmul(&x, &model.layers()[0].w_q).unwrap();
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
    let exact = x.matmul(&model.layers()[0].w_q).unwrap();
    let err = stats::relative_error(&exact, &y);
    assert!(err < 0.5, "excess-noise error {err}");
    let _ = reference;
}
