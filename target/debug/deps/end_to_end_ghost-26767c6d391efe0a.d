/root/repo/target/debug/deps/end_to_end_ghost-26767c6d391efe0a.d: tests/end_to_end_ghost.rs

/root/repo/target/debug/deps/libend_to_end_ghost-26767c6d391efe0a.rmeta: tests/end_to_end_ghost.rs

tests/end_to_end_ghost.rs:
