/root/repo/target/debug/deps/phox_arch-4d4a4d8e1027c7e6.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/debug/deps/libphox_arch-4d4a4d8e1027c7e6.rlib: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/debug/deps/libphox_arch-4d4a4d8e1027c7e6.rmeta: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
