/root/repo/target/debug/deps/criterion-9c449d162001aca7.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-9c449d162001aca7.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
