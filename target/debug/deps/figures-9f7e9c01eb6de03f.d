/root/repo/target/debug/deps/figures-9f7e9c01eb6de03f.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-9f7e9c01eb6de03f: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
