/root/repo/target/debug/deps/proptest-a9e8b85370a26a9d.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-a9e8b85370a26a9d: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
