/root/repo/target/debug/deps/phox_tron-b53c2f8c1162caa5.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs Cargo.toml

/root/repo/target/debug/deps/libphox_tron-b53c2f8c1162caa5.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs Cargo.toml

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
