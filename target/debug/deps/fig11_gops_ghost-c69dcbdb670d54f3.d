/root/repo/target/debug/deps/fig11_gops_ghost-c69dcbdb670d54f3.d: crates/bench/benches/fig11_gops_ghost.rs

/root/repo/target/debug/deps/libfig11_gops_ghost-c69dcbdb670d54f3.rmeta: crates/bench/benches/fig11_gops_ghost.rs

crates/bench/benches/fig11_gops_ghost.rs:
