/root/repo/target/debug/deps/phox_nn-10874ddd3c1401be.d: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

/root/repo/target/debug/deps/libphox_nn-10874ddd3c1401be.rmeta: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

crates/nn/src/lib.rs:
crates/nn/src/census.rs:
crates/nn/src/datasets.rs:
crates/nn/src/gnn.rs:
crates/nn/src/quant_eval.rs:
crates/nn/src/tasks.rs:
crates/nn/src/transformer.rs:
