/root/repo/target/debug/deps/phox-ed8ba92b377ea872.d: src/lib.rs

/root/repo/target/debug/deps/libphox-ed8ba92b377ea872.rmeta: src/lib.rs

src/lib.rs:
