/root/repo/target/debug/deps/quantization_accuracy-a1f47cfffeb8709b.d: tests/quantization_accuracy.rs

/root/repo/target/debug/deps/libquantization_accuracy-a1f47cfffeb8709b.rmeta: tests/quantization_accuracy.rs

tests/quantization_accuracy.rs:
