/root/repo/target/debug/deps/graph_tasks-4151847348f4bb1a.d: tests/graph_tasks.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_tasks-4151847348f4bb1a.rmeta: tests/graph_tasks.rs Cargo.toml

tests/graph_tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
