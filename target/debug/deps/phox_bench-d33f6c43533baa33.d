/root/repo/target/debug/deps/phox_bench-d33f6c43533baa33.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphox_bench-d33f6c43533baa33.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
