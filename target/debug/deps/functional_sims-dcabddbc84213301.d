/root/repo/target/debug/deps/functional_sims-dcabddbc84213301.d: crates/bench/benches/functional_sims.rs

/root/repo/target/debug/deps/libfunctional_sims-dcabddbc84213301.rmeta: crates/bench/benches/functional_sims.rs

crates/bench/benches/functional_sims.rs:
