/root/repo/target/debug/deps/end_to_end_ghost-5acb2664ea7cb32a.d: tests/end_to_end_ghost.rs

/root/repo/target/debug/deps/end_to_end_ghost-5acb2664ea7cb32a: tests/end_to_end_ghost.rs

tests/end_to_end_ghost.rs:
