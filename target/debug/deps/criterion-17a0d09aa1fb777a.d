/root/repo/target/debug/deps/criterion-17a0d09aa1fb777a.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-17a0d09aa1fb777a.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
