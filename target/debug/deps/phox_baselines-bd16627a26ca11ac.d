/root/repo/target/debug/deps/phox_baselines-bd16627a26ca11ac.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/debug/deps/libphox_baselines-bd16627a26ca11ac.rmeta: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
