/root/repo/target/debug/deps/phox_photonics-3452f1eb4636b966.d: crates/photonics/src/lib.rs crates/photonics/src/analog.rs crates/photonics/src/bank.rs crates/photonics/src/coherent.rs crates/photonics/src/constants.rs crates/photonics/src/converter.rs crates/photonics/src/crosstalk.rs crates/photonics/src/design_space.rs crates/photonics/src/devices.rs crates/photonics/src/fault.rs crates/photonics/src/link.rs crates/photonics/src/mr.rs crates/photonics/src/noise.rs crates/photonics/src/pcm.rs crates/photonics/src/summation.rs crates/photonics/src/tuning.rs crates/photonics/src/variation.rs

/root/repo/target/debug/deps/libphox_photonics-3452f1eb4636b966.rmeta: crates/photonics/src/lib.rs crates/photonics/src/analog.rs crates/photonics/src/bank.rs crates/photonics/src/coherent.rs crates/photonics/src/constants.rs crates/photonics/src/converter.rs crates/photonics/src/crosstalk.rs crates/photonics/src/design_space.rs crates/photonics/src/devices.rs crates/photonics/src/fault.rs crates/photonics/src/link.rs crates/photonics/src/mr.rs crates/photonics/src/noise.rs crates/photonics/src/pcm.rs crates/photonics/src/summation.rs crates/photonics/src/tuning.rs crates/photonics/src/variation.rs

crates/photonics/src/lib.rs:
crates/photonics/src/analog.rs:
crates/photonics/src/bank.rs:
crates/photonics/src/coherent.rs:
crates/photonics/src/constants.rs:
crates/photonics/src/converter.rs:
crates/photonics/src/crosstalk.rs:
crates/photonics/src/design_space.rs:
crates/photonics/src/devices.rs:
crates/photonics/src/fault.rs:
crates/photonics/src/link.rs:
crates/photonics/src/mr.rs:
crates/photonics/src/noise.rs:
crates/photonics/src/pcm.rs:
crates/photonics/src/summation.rs:
crates/photonics/src/tuning.rs:
crates/photonics/src/variation.rs:
