/root/repo/target/debug/deps/phox-0ed243a550d1b0a5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libphox-0ed243a550d1b0a5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
