/root/repo/target/debug/deps/bench_snapshot-5fa71113d687472e.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/libbench_snapshot-5fa71113d687472e.rmeta: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
