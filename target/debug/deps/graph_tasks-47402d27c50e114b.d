/root/repo/target/debug/deps/graph_tasks-47402d27c50e114b.d: tests/graph_tasks.rs

/root/repo/target/debug/deps/libgraph_tasks-47402d27c50e114b.rmeta: tests/graph_tasks.rs

tests/graph_tasks.rs:
