/root/repo/target/debug/deps/phox_core-a737b6b5c0eb7c4c.d: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/debug/deps/libphox_core-a737b6b5c0eb7c4c.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
