/root/repo/target/debug/deps/prop-2db89f68e1ecef23.d: crates/ghost/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-2db89f68e1ecef23.rmeta: crates/ghost/tests/prop.rs Cargo.toml

crates/ghost/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
