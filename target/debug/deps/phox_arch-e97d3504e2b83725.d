/root/repo/target/debug/deps/phox_arch-e97d3504e2b83725.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/debug/deps/libphox_arch-e97d3504e2b83725.rmeta: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
