/root/repo/target/debug/deps/phox_bench-7abfd3f90d390397.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libphox_bench-7abfd3f90d390397.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
