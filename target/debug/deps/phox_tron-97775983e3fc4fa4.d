/root/repo/target/debug/deps/phox_tron-97775983e3fc4fa4.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/debug/deps/libphox_tron-97775983e3fc4fa4.rlib: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/debug/deps/libphox_tron-97775983e3fc4fa4.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
