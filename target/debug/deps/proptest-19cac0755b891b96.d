/root/repo/target/debug/deps/proptest-19cac0755b891b96.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-19cac0755b891b96.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
