/root/repo/target/debug/deps/phox_ghost-c54d3bc7a7525be3.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs Cargo.toml

/root/repo/target/debug/deps/libphox_ghost-c54d3bc7a7525be3.rmeta: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs Cargo.toml

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
