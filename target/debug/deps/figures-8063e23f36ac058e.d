/root/repo/target/debug/deps/figures-8063e23f36ac058e.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-8063e23f36ac058e.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
