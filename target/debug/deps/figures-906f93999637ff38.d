/root/repo/target/debug/deps/figures-906f93999637ff38.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-906f93999637ff38.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
