/root/repo/target/debug/deps/fig10_epb_ghost-b52a8b1522a77735.d: crates/bench/benches/fig10_epb_ghost.rs

/root/repo/target/debug/deps/libfig10_epb_ghost-b52a8b1522a77735.rmeta: crates/bench/benches/fig10_epb_ghost.rs

crates/bench/benches/fig10_epb_ghost.rs:
