/root/repo/target/debug/deps/prop-707057ee31923598.d: crates/tensor/tests/prop.rs

/root/repo/target/debug/deps/libprop-707057ee31923598.rmeta: crates/tensor/tests/prop.rs

crates/tensor/tests/prop.rs:
