/root/repo/target/debug/deps/fault_injection-00744654f72450e6.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-00744654f72450e6.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
