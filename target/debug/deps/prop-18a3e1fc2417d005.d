/root/repo/target/debug/deps/prop-18a3e1fc2417d005.d: crates/arch/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-18a3e1fc2417d005.rmeta: crates/arch/tests/prop.rs Cargo.toml

crates/arch/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
