/root/repo/target/debug/deps/paper_claims-e260d35747875d8e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/libpaper_claims-e260d35747875d8e.rmeta: tests/paper_claims.rs

tests/paper_claims.rs:
