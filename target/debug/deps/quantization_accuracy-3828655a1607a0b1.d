/root/repo/target/debug/deps/quantization_accuracy-3828655a1607a0b1.d: tests/quantization_accuracy.rs

/root/repo/target/debug/deps/quantization_accuracy-3828655a1607a0b1: tests/quantization_accuracy.rs

tests/quantization_accuracy.rs:
