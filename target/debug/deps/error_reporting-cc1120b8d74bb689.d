/root/repo/target/debug/deps/error_reporting-cc1120b8d74bb689.d: tests/error_reporting.rs

/root/repo/target/debug/deps/liberror_reporting-cc1120b8d74bb689.rmeta: tests/error_reporting.rs

tests/error_reporting.rs:
