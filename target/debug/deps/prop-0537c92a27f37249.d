/root/repo/target/debug/deps/prop-0537c92a27f37249.d: crates/photonics/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-0537c92a27f37249.rmeta: crates/photonics/tests/prop.rs Cargo.toml

crates/photonics/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
