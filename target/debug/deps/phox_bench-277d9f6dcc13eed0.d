/root/repo/target/debug/deps/phox_bench-277d9f6dcc13eed0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphox_bench-277d9f6dcc13eed0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
