/root/repo/target/debug/deps/phox_ghost-4ad6efb0ca59f618.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/debug/deps/phox_ghost-4ad6efb0ca59f618: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
