/root/repo/target/debug/deps/figures-efbf253c6300a2c9.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-efbf253c6300a2c9.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
