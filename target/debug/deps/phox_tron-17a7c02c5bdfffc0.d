/root/repo/target/debug/deps/phox_tron-17a7c02c5bdfffc0.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/debug/deps/libphox_tron-17a7c02c5bdfffc0.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
