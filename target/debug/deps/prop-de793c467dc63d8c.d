/root/repo/target/debug/deps/prop-de793c467dc63d8c.d: crates/tensor/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-de793c467dc63d8c.rmeta: crates/tensor/tests/prop.rs Cargo.toml

crates/tensor/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
