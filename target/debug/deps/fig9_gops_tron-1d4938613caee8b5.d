/root/repo/target/debug/deps/fig9_gops_tron-1d4938613caee8b5.d: crates/bench/benches/fig9_gops_tron.rs

/root/repo/target/debug/deps/libfig9_gops_tron-1d4938613caee8b5.rmeta: crates/bench/benches/fig9_gops_tron.rs

crates/bench/benches/fig9_gops_tron.rs:
