/root/repo/target/debug/deps/phox-497f2b8f27b1d504.d: src/lib.rs

/root/repo/target/debug/deps/phox-497f2b8f27b1d504: src/lib.rs

src/lib.rs:
