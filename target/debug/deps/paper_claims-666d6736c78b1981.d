/root/repo/target/debug/deps/paper_claims-666d6736c78b1981.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-666d6736c78b1981: tests/paper_claims.rs

tests/paper_claims.rs:
