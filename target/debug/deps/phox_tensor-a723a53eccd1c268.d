/root/repo/target/debug/deps/phox_tensor-a723a53eccd1c268.d: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libphox_tensor-a723a53eccd1c268.rmeta: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/eig.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
