/root/repo/target/debug/deps/functional_sims-e6a81fe86e3cf203.d: crates/bench/benches/functional_sims.rs Cargo.toml

/root/repo/target/debug/deps/libfunctional_sims-e6a81fe86e3cf203.rmeta: crates/bench/benches/functional_sims.rs Cargo.toml

crates/bench/benches/functional_sims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
