/root/repo/target/debug/deps/phox_tron-4d6c9e4217586043.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs Cargo.toml

/root/repo/target/debug/deps/libphox_tron-4d6c9e4217586043.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs Cargo.toml

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
