/root/repo/target/debug/deps/graph_tasks-66c3f679b2c4a868.d: tests/graph_tasks.rs

/root/repo/target/debug/deps/graph_tasks-66c3f679b2c4a868: tests/graph_tasks.rs

tests/graph_tasks.rs:
