/root/repo/target/debug/deps/bench_snapshot-a7eebda431f29927.d: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libbench_snapshot-a7eebda431f29927.rmeta: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

crates/bench/src/bin/bench_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
