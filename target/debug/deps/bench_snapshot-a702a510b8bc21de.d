/root/repo/target/debug/deps/bench_snapshot-a702a510b8bc21de.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-a702a510b8bc21de: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
