/root/repo/target/debug/deps/end_to_end_tron-fbca328ec0669f67.d: tests/end_to_end_tron.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_tron-fbca328ec0669f67.rmeta: tests/end_to_end_tron.rs Cargo.toml

tests/end_to_end_tron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
