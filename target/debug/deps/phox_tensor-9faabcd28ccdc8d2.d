/root/repo/target/debug/deps/phox_tensor-9faabcd28ccdc8d2.d: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libphox_tensor-9faabcd28ccdc8d2.rmeta: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/eig.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
