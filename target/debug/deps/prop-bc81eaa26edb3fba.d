/root/repo/target/debug/deps/prop-bc81eaa26edb3fba.d: crates/nn/tests/prop.rs

/root/repo/target/debug/deps/prop-bc81eaa26edb3fba: crates/nn/tests/prop.rs

crates/nn/tests/prop.rs:
