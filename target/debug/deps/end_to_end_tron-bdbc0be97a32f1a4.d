/root/repo/target/debug/deps/end_to_end_tron-bdbc0be97a32f1a4.d: tests/end_to_end_tron.rs

/root/repo/target/debug/deps/end_to_end_tron-bdbc0be97a32f1a4: tests/end_to_end_tron.rs

tests/end_to_end_tron.rs:
