/root/repo/target/debug/deps/error_reporting-b9fedbb9877128da.d: tests/error_reporting.rs

/root/repo/target/debug/deps/error_reporting-b9fedbb9877128da: tests/error_reporting.rs

tests/error_reporting.rs:
