/root/repo/target/debug/deps/phox_core-e6b97b4819dfc197.d: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/debug/deps/phox_core-e6b97b4819dfc197: crates/core/src/lib.rs crates/core/src/comparison.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
