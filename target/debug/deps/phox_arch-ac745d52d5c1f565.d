/root/repo/target/debug/deps/phox_arch-ac745d52d5c1f565.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/debug/deps/libphox_arch-ac745d52d5c1f565.rmeta: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
