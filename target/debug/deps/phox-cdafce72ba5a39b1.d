/root/repo/target/debug/deps/phox-cdafce72ba5a39b1.d: src/lib.rs

/root/repo/target/debug/deps/libphox-cdafce72ba5a39b1.rlib: src/lib.rs

/root/repo/target/debug/deps/libphox-cdafce72ba5a39b1.rmeta: src/lib.rs

src/lib.rs:
