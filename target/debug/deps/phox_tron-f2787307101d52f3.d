/root/repo/target/debug/deps/phox_tron-f2787307101d52f3.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/debug/deps/libphox_tron-f2787307101d52f3.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
