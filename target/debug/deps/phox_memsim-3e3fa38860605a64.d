/root/repo/target/debug/deps/phox_memsim-3e3fa38860605a64.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/debug/deps/libphox_memsim-3e3fa38860605a64.rmeta: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
