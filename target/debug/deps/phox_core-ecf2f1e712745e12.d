/root/repo/target/debug/deps/phox_core-ecf2f1e712745e12.d: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/debug/deps/libphox_core-ecf2f1e712745e12.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
