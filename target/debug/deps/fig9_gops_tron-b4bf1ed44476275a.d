/root/repo/target/debug/deps/fig9_gops_tron-b4bf1ed44476275a.d: crates/bench/benches/fig9_gops_tron.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_gops_tron-b4bf1ed44476275a.rmeta: crates/bench/benches/fig9_gops_tron.rs Cargo.toml

crates/bench/benches/fig9_gops_tron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
