/root/repo/target/debug/deps/phox_core-ac2f626038a89105.d: crates/core/src/lib.rs crates/core/src/comparison.rs Cargo.toml

/root/repo/target/debug/deps/libphox_core-ac2f626038a89105.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
