/root/repo/target/debug/deps/phox_ghost-e3c0e2b5038f350e.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/debug/deps/libphox_ghost-e3c0e2b5038f350e.rmeta: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
