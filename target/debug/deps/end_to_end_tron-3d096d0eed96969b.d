/root/repo/target/debug/deps/end_to_end_tron-3d096d0eed96969b.d: tests/end_to_end_tron.rs

/root/repo/target/debug/deps/libend_to_end_tron-3d096d0eed96969b.rmeta: tests/end_to_end_tron.rs

tests/end_to_end_tron.rs:
