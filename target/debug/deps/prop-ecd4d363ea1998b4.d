/root/repo/target/debug/deps/prop-ecd4d363ea1998b4.d: crates/nn/tests/prop.rs

/root/repo/target/debug/deps/libprop-ecd4d363ea1998b4.rmeta: crates/nn/tests/prop.rs

crates/nn/tests/prop.rs:
