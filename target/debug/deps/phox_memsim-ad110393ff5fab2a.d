/root/repo/target/debug/deps/phox_memsim-ad110393ff5fab2a.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/debug/deps/libphox_memsim-ad110393ff5fab2a.rmeta: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
