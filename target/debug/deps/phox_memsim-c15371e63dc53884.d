/root/repo/target/debug/deps/phox_memsim-c15371e63dc53884.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/debug/deps/libphox_memsim-c15371e63dc53884.rlib: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/debug/deps/libphox_memsim-c15371e63dc53884.rmeta: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
