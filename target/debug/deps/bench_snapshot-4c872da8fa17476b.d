/root/repo/target/debug/deps/bench_snapshot-4c872da8fa17476b.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-4c872da8fa17476b: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
