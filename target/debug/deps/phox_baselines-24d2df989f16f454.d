/root/repo/target/debug/deps/phox_baselines-24d2df989f16f454.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/debug/deps/phox_baselines-24d2df989f16f454: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
