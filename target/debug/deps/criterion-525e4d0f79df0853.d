/root/repo/target/debug/deps/criterion-525e4d0f79df0853.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-525e4d0f79df0853.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
