/root/repo/target/debug/deps/phox_ghost-b9ba49cb288369b5.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/debug/deps/libphox_ghost-b9ba49cb288369b5.rlib: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/debug/deps/libphox_ghost-b9ba49cb288369b5.rmeta: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
