/root/repo/target/debug/deps/ablations-28556b433a4ae672.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-28556b433a4ae672.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
