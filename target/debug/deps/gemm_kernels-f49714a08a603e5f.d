/root/repo/target/debug/deps/gemm_kernels-f49714a08a603e5f.d: crates/bench/benches/gemm_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libgemm_kernels-f49714a08a603e5f.rmeta: crates/bench/benches/gemm_kernels.rs Cargo.toml

crates/bench/benches/gemm_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
