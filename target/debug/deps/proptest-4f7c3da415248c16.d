/root/repo/target/debug/deps/proptest-4f7c3da415248c16.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-4f7c3da415248c16.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
