/root/repo/target/debug/deps/prop-bce44b6624b0818f.d: crates/memsim/tests/prop.rs

/root/repo/target/debug/deps/prop-bce44b6624b0818f: crates/memsim/tests/prop.rs

crates/memsim/tests/prop.rs:
