/root/repo/target/debug/deps/fig8_epb_tron-811ebc608c888f3b.d: crates/bench/benches/fig8_epb_tron.rs

/root/repo/target/debug/deps/libfig8_epb_tron-811ebc608c888f3b.rmeta: crates/bench/benches/fig8_epb_tron.rs

crates/bench/benches/fig8_epb_tron.rs:
