/root/repo/target/debug/deps/phox_memsim-7c028a832da593f7.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/debug/deps/phox_memsim-7c028a832da593f7: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
