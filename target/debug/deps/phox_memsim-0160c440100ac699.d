/root/repo/target/debug/deps/phox_memsim-0160c440100ac699.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs Cargo.toml

/root/repo/target/debug/deps/libphox_memsim-0160c440100ac699.rmeta: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs Cargo.toml

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
