/root/repo/target/debug/deps/fig10_epb_ghost-142c78151f500c1b.d: crates/bench/benches/fig10_epb_ghost.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_epb_ghost-142c78151f500c1b.rmeta: crates/bench/benches/fig10_epb_ghost.rs Cargo.toml

crates/bench/benches/fig10_epb_ghost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
