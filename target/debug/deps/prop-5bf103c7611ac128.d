/root/repo/target/debug/deps/prop-5bf103c7611ac128.d: crates/arch/tests/prop.rs

/root/repo/target/debug/deps/prop-5bf103c7611ac128: crates/arch/tests/prop.rs

crates/arch/tests/prop.rs:
