/root/repo/target/debug/deps/bench_snapshot-2dfa56d6c4be9273.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/libbench_snapshot-2dfa56d6c4be9273.rmeta: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
