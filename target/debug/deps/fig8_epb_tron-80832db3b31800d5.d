/root/repo/target/debug/deps/fig8_epb_tron-80832db3b31800d5.d: crates/bench/benches/fig8_epb_tron.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_epb_tron-80832db3b31800d5.rmeta: crates/bench/benches/fig8_epb_tron.rs Cargo.toml

crates/bench/benches/fig8_epb_tron.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
