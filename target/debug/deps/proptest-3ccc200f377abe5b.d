/root/repo/target/debug/deps/proptest-3ccc200f377abe5b.d: crates/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-3ccc200f377abe5b.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
