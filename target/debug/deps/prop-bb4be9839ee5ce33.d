/root/repo/target/debug/deps/prop-bb4be9839ee5ce33.d: crates/memsim/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-bb4be9839ee5ce33.rmeta: crates/memsim/tests/prop.rs Cargo.toml

crates/memsim/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
