/root/repo/target/debug/deps/phox_tron-aa7d75873b8ed44f.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/debug/deps/phox_tron-aa7d75873b8ed44f: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
