/root/repo/target/debug/deps/fault_injection-e93d945cc0e460c0.d: tests/fault_injection.rs

/root/repo/target/debug/deps/libfault_injection-e93d945cc0e460c0.rmeta: tests/fault_injection.rs

tests/fault_injection.rs:
