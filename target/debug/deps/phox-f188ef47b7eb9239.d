/root/repo/target/debug/deps/phox-f188ef47b7eb9239.d: src/lib.rs

/root/repo/target/debug/deps/libphox-f188ef47b7eb9239.rmeta: src/lib.rs

src/lib.rs:
