/root/repo/target/debug/deps/phox_nn-9dd8d879872d336d.d: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs Cargo.toml

/root/repo/target/debug/deps/libphox_nn-9dd8d879872d336d.rmeta: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/census.rs:
crates/nn/src/datasets.rs:
crates/nn/src/gnn.rs:
crates/nn/src/quant_eval.rs:
crates/nn/src/tasks.rs:
crates/nn/src/transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
