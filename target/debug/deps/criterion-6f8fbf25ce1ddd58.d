/root/repo/target/debug/deps/criterion-6f8fbf25ce1ddd58.d: crates/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-6f8fbf25ce1ddd58.rmeta: crates/criterion/src/lib.rs

crates/criterion/src/lib.rs:
