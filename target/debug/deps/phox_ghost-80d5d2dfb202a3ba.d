/root/repo/target/debug/deps/phox_ghost-80d5d2dfb202a3ba.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/debug/deps/libphox_ghost-80d5d2dfb202a3ba.rmeta: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
