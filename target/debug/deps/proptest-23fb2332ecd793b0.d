/root/repo/target/debug/deps/proptest-23fb2332ecd793b0.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-23fb2332ecd793b0.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
