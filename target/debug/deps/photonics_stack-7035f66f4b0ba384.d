/root/repo/target/debug/deps/photonics_stack-7035f66f4b0ba384.d: tests/photonics_stack.rs Cargo.toml

/root/repo/target/debug/deps/libphotonics_stack-7035f66f4b0ba384.rmeta: tests/photonics_stack.rs Cargo.toml

tests/photonics_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
