/root/repo/target/debug/deps/prop-71cf68df1a1b7216.d: crates/arch/tests/prop.rs

/root/repo/target/debug/deps/libprop-71cf68df1a1b7216.rmeta: crates/arch/tests/prop.rs

crates/arch/tests/prop.rs:
