/root/repo/target/debug/deps/prop-515b8d293c1d7835.d: crates/nn/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-515b8d293c1d7835.rmeta: crates/nn/tests/prop.rs Cargo.toml

crates/nn/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
