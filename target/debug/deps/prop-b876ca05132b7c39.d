/root/repo/target/debug/deps/prop-b876ca05132b7c39.d: crates/ghost/tests/prop.rs

/root/repo/target/debug/deps/prop-b876ca05132b7c39: crates/ghost/tests/prop.rs

crates/ghost/tests/prop.rs:
