/root/repo/target/debug/deps/prop-4a994a13d6f262bf.d: crates/tensor/tests/prop.rs

/root/repo/target/debug/deps/prop-4a994a13d6f262bf: crates/tensor/tests/prop.rs

crates/tensor/tests/prop.rs:
