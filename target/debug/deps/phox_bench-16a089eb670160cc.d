/root/repo/target/debug/deps/phox_bench-16a089eb670160cc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/phox_bench-16a089eb670160cc: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
