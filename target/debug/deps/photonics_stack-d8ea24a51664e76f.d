/root/repo/target/debug/deps/photonics_stack-d8ea24a51664e76f.d: tests/photonics_stack.rs

/root/repo/target/debug/deps/photonics_stack-d8ea24a51664e76f: tests/photonics_stack.rs

tests/photonics_stack.rs:
