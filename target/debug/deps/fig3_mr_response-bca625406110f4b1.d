/root/repo/target/debug/deps/fig3_mr_response-bca625406110f4b1.d: crates/bench/benches/fig3_mr_response.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_mr_response-bca625406110f4b1.rmeta: crates/bench/benches/fig3_mr_response.rs Cargo.toml

crates/bench/benches/fig3_mr_response.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
