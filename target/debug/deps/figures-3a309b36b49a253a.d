/root/repo/target/debug/deps/figures-3a309b36b49a253a.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3a309b36b49a253a: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
