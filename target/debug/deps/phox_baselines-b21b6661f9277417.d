/root/repo/target/debug/deps/phox_baselines-b21b6661f9277417.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/debug/deps/libphox_baselines-b21b6661f9277417.rlib: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/debug/deps/libphox_baselines-b21b6661f9277417.rmeta: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
