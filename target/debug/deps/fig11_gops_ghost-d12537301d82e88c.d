/root/repo/target/debug/deps/fig11_gops_ghost-d12537301d82e88c.d: crates/bench/benches/fig11_gops_ghost.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_gops_ghost-d12537301d82e88c.rmeta: crates/bench/benches/fig11_gops_ghost.rs Cargo.toml

crates/bench/benches/fig11_gops_ghost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
