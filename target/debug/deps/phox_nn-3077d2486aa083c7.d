/root/repo/target/debug/deps/phox_nn-3077d2486aa083c7.d: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs Cargo.toml

/root/repo/target/debug/deps/libphox_nn-3077d2486aa083c7.rmeta: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/census.rs:
crates/nn/src/datasets.rs:
crates/nn/src/gnn.rs:
crates/nn/src/quant_eval.rs:
crates/nn/src/tasks.rs:
crates/nn/src/transformer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
