/root/repo/target/debug/deps/phox_nn-58fb3239e0bf2a4c.d: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

/root/repo/target/debug/deps/phox_nn-58fb3239e0bf2a4c: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

crates/nn/src/lib.rs:
crates/nn/src/census.rs:
crates/nn/src/datasets.rs:
crates/nn/src/gnn.rs:
crates/nn/src/quant_eval.rs:
crates/nn/src/tasks.rs:
crates/nn/src/transformer.rs:
