/root/repo/target/debug/deps/prop-fb923cbe54d29497.d: crates/ghost/tests/prop.rs

/root/repo/target/debug/deps/libprop-fb923cbe54d29497.rmeta: crates/ghost/tests/prop.rs

crates/ghost/tests/prop.rs:
