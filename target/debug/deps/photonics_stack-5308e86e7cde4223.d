/root/repo/target/debug/deps/photonics_stack-5308e86e7cde4223.d: tests/photonics_stack.rs

/root/repo/target/debug/deps/libphotonics_stack-5308e86e7cde4223.rmeta: tests/photonics_stack.rs

tests/photonics_stack.rs:
