/root/repo/target/debug/deps/fig3_mr_response-c57b8d3699276f6d.d: crates/bench/benches/fig3_mr_response.rs

/root/repo/target/debug/deps/libfig3_mr_response-c57b8d3699276f6d.rmeta: crates/bench/benches/fig3_mr_response.rs

crates/bench/benches/fig3_mr_response.rs:
