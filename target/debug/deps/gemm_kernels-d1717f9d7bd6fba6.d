/root/repo/target/debug/deps/gemm_kernels-d1717f9d7bd6fba6.d: crates/bench/benches/gemm_kernels.rs

/root/repo/target/debug/deps/libgemm_kernels-d1717f9d7bd6fba6.rmeta: crates/bench/benches/gemm_kernels.rs

crates/bench/benches/gemm_kernels.rs:
