/root/repo/target/debug/deps/phox_arch-173d90ca91a42a46.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libphox_arch-173d90ca91a42a46.rmeta: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs Cargo.toml

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
