/root/repo/target/debug/deps/phox-7fd425f3febd2318.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libphox-7fd425f3febd2318.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
