/root/repo/target/debug/deps/phox_bench-b8556cd0f7944654.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphox_bench-b8556cd0f7944654.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libphox_bench-b8556cd0f7944654.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
