/root/repo/target/debug/deps/prop-a5ab8e577455ccf0.d: crates/photonics/tests/prop.rs

/root/repo/target/debug/deps/prop-a5ab8e577455ccf0: crates/photonics/tests/prop.rs

crates/photonics/tests/prop.rs:
