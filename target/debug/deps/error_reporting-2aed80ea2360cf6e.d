/root/repo/target/debug/deps/error_reporting-2aed80ea2360cf6e.d: tests/error_reporting.rs Cargo.toml

/root/repo/target/debug/deps/liberror_reporting-2aed80ea2360cf6e.rmeta: tests/error_reporting.rs Cargo.toml

tests/error_reporting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
