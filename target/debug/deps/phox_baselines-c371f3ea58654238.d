/root/repo/target/debug/deps/phox_baselines-c371f3ea58654238.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/debug/deps/libphox_baselines-c371f3ea58654238.rmeta: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
