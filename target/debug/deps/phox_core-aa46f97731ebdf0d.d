/root/repo/target/debug/deps/phox_core-aa46f97731ebdf0d.d: crates/core/src/lib.rs crates/core/src/comparison.rs Cargo.toml

/root/repo/target/debug/deps/libphox_core-aa46f97731ebdf0d.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
