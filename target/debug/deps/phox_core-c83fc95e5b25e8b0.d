/root/repo/target/debug/deps/phox_core-c83fc95e5b25e8b0.d: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/debug/deps/libphox_core-c83fc95e5b25e8b0.rlib: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/debug/deps/libphox_core-c83fc95e5b25e8b0.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
