/root/repo/target/debug/deps/ablations-edef42d51b89a4b1.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-edef42d51b89a4b1.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
