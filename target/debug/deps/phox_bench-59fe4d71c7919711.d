/root/repo/target/debug/deps/phox_bench-59fe4d71c7919711.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libphox_bench-59fe4d71c7919711.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
