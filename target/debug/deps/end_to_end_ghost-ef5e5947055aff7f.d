/root/repo/target/debug/deps/end_to_end_ghost-ef5e5947055aff7f.d: tests/end_to_end_ghost.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_ghost-ef5e5947055aff7f.rmeta: tests/end_to_end_ghost.rs Cargo.toml

tests/end_to_end_ghost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
