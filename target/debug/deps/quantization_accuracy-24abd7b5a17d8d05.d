/root/repo/target/debug/deps/quantization_accuracy-24abd7b5a17d8d05.d: tests/quantization_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libquantization_accuracy-24abd7b5a17d8d05.rmeta: tests/quantization_accuracy.rs Cargo.toml

tests/quantization_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
