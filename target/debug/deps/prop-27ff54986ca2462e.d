/root/repo/target/debug/deps/prop-27ff54986ca2462e.d: crates/photonics/tests/prop.rs

/root/repo/target/debug/deps/libprop-27ff54986ca2462e.rmeta: crates/photonics/tests/prop.rs

crates/photonics/tests/prop.rs:
