/root/repo/target/debug/deps/phox_baselines-160a8b4210cd2dfd.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libphox_baselines-160a8b4210cd2dfd.rmeta: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
