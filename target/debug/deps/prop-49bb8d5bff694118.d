/root/repo/target/debug/deps/prop-49bb8d5bff694118.d: crates/memsim/tests/prop.rs

/root/repo/target/debug/deps/libprop-49bb8d5bff694118.rmeta: crates/memsim/tests/prop.rs

crates/memsim/tests/prop.rs:
