/root/repo/target/debug/deps/phox_tensor-241dcb00268d48e4.d: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/debug/deps/libphox_tensor-241dcb00268d48e4.rmeta: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/eig.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
