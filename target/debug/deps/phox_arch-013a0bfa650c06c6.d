/root/repo/target/debug/deps/phox_arch-013a0bfa650c06c6.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/debug/deps/phox_arch-013a0bfa650c06c6: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
