/root/repo/target/debug/deps/figures-5547d2e7c4ce4525.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/libfigures-5547d2e7c4ce4525.rmeta: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
