/root/repo/target/debug/deps/fault_injection-8fda6d3c6c3fe5b0.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-8fda6d3c6c3fe5b0: tests/fault_injection.rs

tests/fault_injection.rs:
