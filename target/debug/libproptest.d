/root/repo/target/debug/libproptest.rlib: /root/repo/crates/proptest/src/lib.rs
