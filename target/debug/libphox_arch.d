/root/repo/target/debug/libphox_arch.rlib: /root/repo/crates/arch/src/lib.rs /root/repo/crates/arch/src/metrics.rs /root/repo/crates/arch/src/pipeline.rs /root/repo/crates/arch/src/schedule.rs
