/root/repo/target/debug/examples/graph_processing-e669509e24c444e5.d: examples/graph_processing.rs

/root/repo/target/debug/examples/libgraph_processing-e669509e24c444e5.rmeta: examples/graph_processing.rs

examples/graph_processing.rs:
