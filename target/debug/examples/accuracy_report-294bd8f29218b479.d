/root/repo/target/debug/examples/accuracy_report-294bd8f29218b479.d: examples/accuracy_report.rs

/root/repo/target/debug/examples/libaccuracy_report-294bd8f29218b479.rmeta: examples/accuracy_report.rs

examples/accuracy_report.rs:
