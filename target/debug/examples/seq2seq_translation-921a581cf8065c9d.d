/root/repo/target/debug/examples/seq2seq_translation-921a581cf8065c9d.d: examples/seq2seq_translation.rs Cargo.toml

/root/repo/target/debug/examples/libseq2seq_translation-921a581cf8065c9d.rmeta: examples/seq2seq_translation.rs Cargo.toml

examples/seq2seq_translation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
