/root/repo/target/debug/examples/quickstart-2714066afe5511dd.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-2714066afe5511dd.rmeta: examples/quickstart.rs

examples/quickstart.rs:
