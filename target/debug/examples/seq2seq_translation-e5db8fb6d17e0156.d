/root/repo/target/debug/examples/seq2seq_translation-e5db8fb6d17e0156.d: examples/seq2seq_translation.rs

/root/repo/target/debug/examples/seq2seq_translation-e5db8fb6d17e0156: examples/seq2seq_translation.rs

examples/seq2seq_translation.rs:
