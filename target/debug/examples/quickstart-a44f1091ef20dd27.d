/root/repo/target/debug/examples/quickstart-a44f1091ef20dd27.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a44f1091ef20dd27.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
