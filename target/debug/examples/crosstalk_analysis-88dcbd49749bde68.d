/root/repo/target/debug/examples/crosstalk_analysis-88dcbd49749bde68.d: examples/crosstalk_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libcrosstalk_analysis-88dcbd49749bde68.rmeta: examples/crosstalk_analysis.rs Cargo.toml

examples/crosstalk_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
