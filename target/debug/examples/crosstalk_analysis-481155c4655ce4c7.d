/root/repo/target/debug/examples/crosstalk_analysis-481155c4655ce4c7.d: examples/crosstalk_analysis.rs

/root/repo/target/debug/examples/libcrosstalk_analysis-481155c4655ce4c7.rmeta: examples/crosstalk_analysis.rs

examples/crosstalk_analysis.rs:
