/root/repo/target/debug/examples/accuracy_report-4c7d1642b51f40dd.d: examples/accuracy_report.rs Cargo.toml

/root/repo/target/debug/examples/libaccuracy_report-4c7d1642b51f40dd.rmeta: examples/accuracy_report.rs Cargo.toml

examples/accuracy_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
