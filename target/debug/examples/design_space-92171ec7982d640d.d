/root/repo/target/debug/examples/design_space-92171ec7982d640d.d: examples/design_space.rs

/root/repo/target/debug/examples/libdesign_space-92171ec7982d640d.rmeta: examples/design_space.rs

examples/design_space.rs:
