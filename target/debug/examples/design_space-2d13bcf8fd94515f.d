/root/repo/target/debug/examples/design_space-2d13bcf8fd94515f.d: examples/design_space.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_space-2d13bcf8fd94515f.rmeta: examples/design_space.rs Cargo.toml

examples/design_space.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
