/root/repo/target/debug/examples/llm_inference-7d640d96c7872880.d: examples/llm_inference.rs

/root/repo/target/debug/examples/libllm_inference-7d640d96c7872880.rmeta: examples/llm_inference.rs

examples/llm_inference.rs:
