/root/repo/target/debug/examples/graph_processing-4671546320ed20a8.d: examples/graph_processing.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_processing-4671546320ed20a8.rmeta: examples/graph_processing.rs Cargo.toml

examples/graph_processing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
