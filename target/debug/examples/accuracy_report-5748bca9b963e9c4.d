/root/repo/target/debug/examples/accuracy_report-5748bca9b963e9c4.d: examples/accuracy_report.rs

/root/repo/target/debug/examples/accuracy_report-5748bca9b963e9c4: examples/accuracy_report.rs

examples/accuracy_report.rs:
