/root/repo/target/debug/examples/llm_inference-e77294098a624bc7.d: examples/llm_inference.rs Cargo.toml

/root/repo/target/debug/examples/libllm_inference-e77294098a624bc7.rmeta: examples/llm_inference.rs Cargo.toml

examples/llm_inference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
