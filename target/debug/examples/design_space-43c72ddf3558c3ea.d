/root/repo/target/debug/examples/design_space-43c72ddf3558c3ea.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-43c72ddf3558c3ea: examples/design_space.rs

examples/design_space.rs:
