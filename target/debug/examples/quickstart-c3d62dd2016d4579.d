/root/repo/target/debug/examples/quickstart-c3d62dd2016d4579.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c3d62dd2016d4579: examples/quickstart.rs

examples/quickstart.rs:
