/root/repo/target/debug/examples/crosstalk_analysis-4e9bbbf2fb4354d4.d: examples/crosstalk_analysis.rs

/root/repo/target/debug/examples/crosstalk_analysis-4e9bbbf2fb4354d4: examples/crosstalk_analysis.rs

examples/crosstalk_analysis.rs:
