/root/repo/target/debug/examples/seq2seq_translation-6377bd8f1ebe3f9b.d: examples/seq2seq_translation.rs

/root/repo/target/debug/examples/libseq2seq_translation-6377bd8f1ebe3f9b.rmeta: examples/seq2seq_translation.rs

examples/seq2seq_translation.rs:
