/root/repo/target/debug/examples/graph_processing-7783e1b9fb24c34d.d: examples/graph_processing.rs

/root/repo/target/debug/examples/graph_processing-7783e1b9fb24c34d: examples/graph_processing.rs

examples/graph_processing.rs:
