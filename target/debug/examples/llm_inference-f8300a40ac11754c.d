/root/repo/target/debug/examples/llm_inference-f8300a40ac11754c.d: examples/llm_inference.rs

/root/repo/target/debug/examples/llm_inference-f8300a40ac11754c: examples/llm_inference.rs

examples/llm_inference.rs:
