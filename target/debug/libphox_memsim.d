/root/repo/target/debug/libphox_memsim.rlib: /root/repo/crates/memsim/src/dram.rs /root/repo/crates/memsim/src/hierarchy.rs /root/repo/crates/memsim/src/lib.rs /root/repo/crates/memsim/src/sram.rs
