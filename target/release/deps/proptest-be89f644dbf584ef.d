/root/repo/target/release/deps/proptest-be89f644dbf584ef.d: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-be89f644dbf584ef.rlib: crates/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-be89f644dbf584ef.rmeta: crates/proptest/src/lib.rs

crates/proptest/src/lib.rs:
