/root/repo/target/release/deps/phox_tron-4016c137f0773fe3.d: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/release/deps/libphox_tron-4016c137f0773fe3.rlib: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

/root/repo/target/release/deps/libphox_tron-4016c137f0773fe3.rmeta: crates/tron/src/lib.rs crates/tron/src/config.rs crates/tron/src/functional.rs crates/tron/src/perf.rs

crates/tron/src/lib.rs:
crates/tron/src/config.rs:
crates/tron/src/functional.rs:
crates/tron/src/perf.rs:
