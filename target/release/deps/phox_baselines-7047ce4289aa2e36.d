/root/repo/target/release/deps/phox_baselines-7047ce4289aa2e36.d: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/release/deps/libphox_baselines-7047ce4289aa2e36.rlib: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

/root/repo/target/release/deps/libphox_baselines-7047ce4289aa2e36.rmeta: crates/baselines/src/lib.rs crates/baselines/src/reported.rs crates/baselines/src/roofline.rs crates/baselines/src/suite.rs

crates/baselines/src/lib.rs:
crates/baselines/src/reported.rs:
crates/baselines/src/roofline.rs:
crates/baselines/src/suite.rs:
