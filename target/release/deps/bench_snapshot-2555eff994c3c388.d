/root/repo/target/release/deps/bench_snapshot-2555eff994c3c388.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-2555eff994c3c388: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
