/root/repo/target/release/deps/end_to_end_ghost-a6e812b1977329c3.d: tests/end_to_end_ghost.rs

/root/repo/target/release/deps/end_to_end_ghost-a6e812b1977329c3: tests/end_to_end_ghost.rs

tests/end_to_end_ghost.rs:
