/root/repo/target/release/deps/figures-27129dad38c3283d.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-27129dad38c3283d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
