/root/repo/target/release/deps/phox_core-581de61a380c25ac.d: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/release/deps/libphox_core-581de61a380c25ac.rlib: crates/core/src/lib.rs crates/core/src/comparison.rs

/root/repo/target/release/deps/libphox_core-581de61a380c25ac.rmeta: crates/core/src/lib.rs crates/core/src/comparison.rs

crates/core/src/lib.rs:
crates/core/src/comparison.rs:
