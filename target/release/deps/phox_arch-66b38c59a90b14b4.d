/root/repo/target/release/deps/phox_arch-66b38c59a90b14b4.d: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/release/deps/libphox_arch-66b38c59a90b14b4.rlib: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

/root/repo/target/release/deps/libphox_arch-66b38c59a90b14b4.rmeta: crates/arch/src/lib.rs crates/arch/src/metrics.rs crates/arch/src/pipeline.rs crates/arch/src/schedule.rs

crates/arch/src/lib.rs:
crates/arch/src/metrics.rs:
crates/arch/src/pipeline.rs:
crates/arch/src/schedule.rs:
