/root/repo/target/release/deps/phox_ghost-30c4e84ce16c3023.d: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/release/deps/libphox_ghost-30c4e84ce16c3023.rlib: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

/root/repo/target/release/deps/libphox_ghost-30c4e84ce16c3023.rmeta: crates/ghost/src/lib.rs crates/ghost/src/config.rs crates/ghost/src/functional.rs crates/ghost/src/partition.rs crates/ghost/src/perf.rs

crates/ghost/src/lib.rs:
crates/ghost/src/config.rs:
crates/ghost/src/functional.rs:
crates/ghost/src/partition.rs:
crates/ghost/src/perf.rs:
