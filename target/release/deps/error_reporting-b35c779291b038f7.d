/root/repo/target/release/deps/error_reporting-b35c779291b038f7.d: tests/error_reporting.rs

/root/repo/target/release/deps/error_reporting-b35c779291b038f7: tests/error_reporting.rs

tests/error_reporting.rs:
