/root/repo/target/release/deps/phox_bench-8316643bdf0dfb30.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/phox_bench-8316643bdf0dfb30: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
