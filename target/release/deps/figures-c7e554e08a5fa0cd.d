/root/repo/target/release/deps/figures-c7e554e08a5fa0cd.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-c7e554e08a5fa0cd: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
