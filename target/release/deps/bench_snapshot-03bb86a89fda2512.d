/root/repo/target/release/deps/bench_snapshot-03bb86a89fda2512.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/release/deps/bench_snapshot-03bb86a89fda2512: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
