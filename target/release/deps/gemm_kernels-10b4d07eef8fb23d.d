/root/repo/target/release/deps/gemm_kernels-10b4d07eef8fb23d.d: crates/bench/benches/gemm_kernels.rs

/root/repo/target/release/deps/gemm_kernels-10b4d07eef8fb23d: crates/bench/benches/gemm_kernels.rs

crates/bench/benches/gemm_kernels.rs:
