/root/repo/target/release/deps/phox_memsim-d130831697543b43.d: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/release/deps/libphox_memsim-d130831697543b43.rlib: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

/root/repo/target/release/deps/libphox_memsim-d130831697543b43.rmeta: crates/memsim/src/lib.rs crates/memsim/src/dram.rs crates/memsim/src/hierarchy.rs crates/memsim/src/sram.rs

crates/memsim/src/lib.rs:
crates/memsim/src/dram.rs:
crates/memsim/src/hierarchy.rs:
crates/memsim/src/sram.rs:
