/root/repo/target/release/deps/phox_nn-8256c21894f44cd8.d: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

/root/repo/target/release/deps/libphox_nn-8256c21894f44cd8.rlib: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

/root/repo/target/release/deps/libphox_nn-8256c21894f44cd8.rmeta: crates/nn/src/lib.rs crates/nn/src/census.rs crates/nn/src/datasets.rs crates/nn/src/gnn.rs crates/nn/src/quant_eval.rs crates/nn/src/tasks.rs crates/nn/src/transformer.rs

crates/nn/src/lib.rs:
crates/nn/src/census.rs:
crates/nn/src/datasets.rs:
crates/nn/src/gnn.rs:
crates/nn/src/quant_eval.rs:
crates/nn/src/tasks.rs:
crates/nn/src/transformer.rs:
