/root/repo/target/release/deps/phox_tensor-b3f4a88d8dff5d3d.d: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libphox_tensor-b3f4a88d8dff5d3d.rlib: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

/root/repo/target/release/deps/libphox_tensor-b3f4a88d8dff5d3d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/eig.rs crates/tensor/src/gemm.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/parallel.rs crates/tensor/src/quant.rs crates/tensor/src/rng.rs crates/tensor/src/stats.rs

crates/tensor/src/lib.rs:
crates/tensor/src/eig.rs:
crates/tensor/src/gemm.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/parallel.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/stats.rs:
