/root/repo/target/release/deps/phox-9f50c1cccb419b57.d: src/lib.rs

/root/repo/target/release/deps/libphox-9f50c1cccb419b57.rlib: src/lib.rs

/root/repo/target/release/deps/libphox-9f50c1cccb419b57.rmeta: src/lib.rs

src/lib.rs:
