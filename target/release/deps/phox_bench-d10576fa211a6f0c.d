/root/repo/target/release/deps/phox_bench-d10576fa211a6f0c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libphox_bench-d10576fa211a6f0c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libphox_bench-d10576fa211a6f0c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
