/root/repo/target/release/examples/quickstart-afb16e4efe454d5b.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-afb16e4efe454d5b: examples/quickstart.rs

examples/quickstart.rs:
