/root/repo/target/release/examples/crosstalk_analysis-4e271b03fd8141ed.d: examples/crosstalk_analysis.rs

/root/repo/target/release/examples/crosstalk_analysis-4e271b03fd8141ed: examples/crosstalk_analysis.rs

examples/crosstalk_analysis.rs:
