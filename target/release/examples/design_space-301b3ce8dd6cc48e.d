/root/repo/target/release/examples/design_space-301b3ce8dd6cc48e.d: examples/design_space.rs

/root/repo/target/release/examples/design_space-301b3ce8dd6cc48e: examples/design_space.rs

examples/design_space.rs:
